// Unit + property tests for emon::chain — SHA-256 against FIPS vectors,
// Merkle proofs, block serialization, ledger tamper detection, and the
// permissioned multi-writer chain.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "chain/block.hpp"
#include "chain/ledger.hpp"
#include "chain/merkle.hpp"
#include "chain/permissioned.hpp"
#include "chain/sha256.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace emon::chain {
namespace {

std::vector<RecordBytes> make_records(std::size_t n, std::uint64_t seed = 1) {
  util::Rng rng{seed};
  std::vector<RecordBytes> out;
  for (std::size_t i = 0; i < n; ++i) {
    RecordBytes rec(16 + i % 48);
    for (auto& b : rec) {
      b = static_cast<std::uint8_t>(rng.next() & 0xff);
    }
    out.push_back(std::move(rec));
  }
  return out;
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 test vectors)
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongMessage) {
  // One million 'a' characters (FIPS 180-4 appendix vector).
  const std::string m(1'000'000, 'a');
  EXPECT_EQ(to_hex(Sha256::hash(m)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/64-byte messages exercise all padding branches.
  EXPECT_EQ(to_hex(Sha256::hash(std::string(55, 'x'))),
            to_hex(Sha256::hash(std::string(55, 'x'))));
  const auto h56 = Sha256::hash(std::string(56, 'x'));
  const auto h64 = Sha256::hash(std::string(64, 'x'));
  EXPECT_NE(to_hex(h56), to_hex(h64));
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const std::string msg =
      "the quick brown fox jumps over the lazy dog, repeatedly, in chunks";
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    h.update(std::string_view(msg).substr(i, 7));
  }
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::hash(msg)));
}

TEST(Sha256, ChunkingInvariance) {
  // Property: any split of the input yields the same digest.
  util::Rng rng{77};
  std::string msg(300, '\0');
  for (auto& c : msg) {
    c = static_cast<char>('a' + rng.uniform_int(0, 25));
  }
  const auto reference = to_hex(Sha256::hash(msg));
  for (std::size_t split = 0; split <= msg.size(); split += 17) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(to_hex(h.finish()), reference) << "split at " << split;
  }
}

TEST(Sha256, AvalancheOnSingleBitFlip) {
  std::string msg = "consumption record payload";
  const Digest a = Sha256::hash(msg);
  msg[0] = static_cast<char>(msg[0] ^ 0x01);
  const Digest b = Sha256::hash(msg);
  int differing_bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing_bits += __builtin_popcount(a[i] ^ b[i]);
  }
  // Expect roughly half of 256 bits to flip; 80 is a conservative floor.
  EXPECT_GT(differing_bits, 80);
}

// ---------------------------------------------------------------------------
// Merkle tree
// ---------------------------------------------------------------------------

TEST(Merkle, EmptyTreeHasZeroRoot) {
  MerkleTree tree{{}};
  EXPECT_EQ(tree.root(), zero_digest());
  EXPECT_EQ(tree.leaf_count(), 0u);
  EXPECT_FALSE(tree.prove(0).has_value());
}

TEST(Merkle, SingleLeaf) {
  const Digest leaf = Sha256::hash("only");
  MerkleTree tree{{leaf}};
  EXPECT_NE(tree.root(), zero_digest());
  EXPECT_NE(tree.root(), leaf);  // leaf tagging means root != raw leaf
  const auto proof = tree.prove(0);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(MerkleTree::verify(leaf, *proof, tree.root()));
}

class MerkleProofSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofSweep, EveryLeafProves) {
  const std::size_t n = GetParam();
  std::vector<Digest> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::hash("leaf-" + std::to_string(i)));
  }
  MerkleTree tree{leaves};
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = tree.prove(i);
    ASSERT_TRUE(proof.has_value()) << "leaf " << i;
    EXPECT_TRUE(MerkleTree::verify(leaves[i], *proof, tree.root()))
        << "leaf " << i << " of " << n;
    // Wrong leaf must not verify with this proof.
    const Digest wrong = Sha256::hash("not-a-leaf");
    EXPECT_FALSE(MerkleTree::verify(wrong, *proof, tree.root()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           33, 64, 100));

TEST(Merkle, RootChangesWithAnyLeaf) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 10; ++i) {
    leaves.push_back(Sha256::hash("v" + std::to_string(i)));
  }
  const Digest original = MerkleTree::root_of(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i][0] ^= 0xff;
    EXPECT_NE(MerkleTree::root_of(mutated), original) << "leaf " << i;
  }
}

TEST(Merkle, OrderMatters) {
  const std::vector<Digest> ab{Sha256::hash("a"), Sha256::hash("b")};
  const std::vector<Digest> ba{Sha256::hash("b"), Sha256::hash("a")};
  EXPECT_NE(MerkleTree::root_of(ab), MerkleTree::root_of(ba));
}

TEST(Merkle, ProofOutOfRange) {
  MerkleTree tree{{Sha256::hash("x")}};
  EXPECT_FALSE(tree.prove(1).has_value());
}

// ---------------------------------------------------------------------------
// Block
// ---------------------------------------------------------------------------

TEST(Block, MakeBlockPopulatesEverything) {
  const auto records = make_records(5);
  const Block b = make_block(3, Sha256::hash("prev"), 1234, "agg-1", records);
  EXPECT_EQ(b.header.index, 3u);
  EXPECT_EQ(b.header.timestamp_ns, 1234);
  EXPECT_EQ(b.header.writer, "agg-1");
  EXPECT_EQ(b.records.size(), 5u);
  EXPECT_EQ(b.header.merkle_root, records_merkle_root(records));
  EXPECT_EQ(b.hash, compute_block_hash(b.header));
  EXPECT_TRUE(verify_block_integrity(b));
}

TEST(Block, TamperedRecordDetected) {
  Block b = make_block(0, zero_digest(), 0, "w", make_records(4));
  b.records[2][0] ^= 0x01;
  EXPECT_FALSE(verify_block_integrity(b));
}

TEST(Block, TamperedHeaderDetected) {
  Block b = make_block(0, zero_digest(), 0, "w", make_records(4));
  b.header.timestamp_ns += 1;
  EXPECT_FALSE(verify_block_integrity(b));
}

TEST(Block, SerializationRoundTrip) {
  Block b = make_block(7, Sha256::hash("p"), 99, "agg-2", make_records(6));
  b.signature = Sha256::hash("sig");
  const auto bytes = serialize_block(b);
  const Block back = deserialize_block(bytes);
  EXPECT_EQ(back.header.index, b.header.index);
  EXPECT_EQ(back.header.prev_hash, b.header.prev_hash);
  EXPECT_EQ(back.header.merkle_root, b.header.merkle_root);
  EXPECT_EQ(back.header.timestamp_ns, b.header.timestamp_ns);
  EXPECT_EQ(back.header.writer, b.header.writer);
  EXPECT_EQ(back.records, b.records);
  EXPECT_EQ(back.hash, b.hash);
  EXPECT_EQ(back.signature, b.signature);
  EXPECT_TRUE(verify_block_integrity(back));
}

TEST(Block, DeserializeRejectsTruncation) {
  const Block b = make_block(0, zero_digest(), 0, "w", make_records(2));
  auto bytes = serialize_block(b);
  bytes.resize(bytes.size() - 5);
  EXPECT_THROW(deserialize_block(bytes), util::DecodeError);
}

TEST(Block, DeserializeRejectsTrailingBytes) {
  const Block b = make_block(0, zero_digest(), 0, "w", make_records(2));
  auto bytes = serialize_block(b);
  bytes.push_back(0);
  EXPECT_THROW(deserialize_block(bytes), util::DecodeError);
}

TEST(Block, EmptyRecordsBlockIsValid) {
  const Block b = make_block(0, zero_digest(), 5, "w", {});
  EXPECT_TRUE(verify_block_integrity(b));
  EXPECT_EQ(b.header.merkle_root, zero_digest());
}

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

TEST(Ledger, AppendsLinkCorrectly) {
  Ledger ledger;
  const Block& b0 = ledger.append(make_records(2), 10, "w");
  EXPECT_EQ(b0.header.prev_hash, zero_digest());
  const Block& b1 = ledger.append(make_records(3), 20, "w");
  EXPECT_EQ(b1.header.prev_hash, ledger.at(0).hash);
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.record_count(), 5u);
  EXPECT_EQ(ledger.tip_hash(), ledger.at(1).hash);
  EXPECT_TRUE(ledger.validate().ok);
}

TEST(Ledger, DetectsRecordTampering) {
  Ledger ledger;
  for (int i = 0; i < 5; ++i) {
    ledger.append(make_records(3, static_cast<std::uint64_t>(i)), i * 10, "w");
  }
  ledger.mutable_blocks_for_tampering()[2].records[1][0] ^= 0x80;
  const auto result = ledger.validate();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bad_index, 2u);
}

TEST(Ledger, DetectsRewrittenBlock) {
  Ledger ledger;
  for (int i = 0; i < 4; ++i) {
    ledger.append(make_records(2, static_cast<std::uint64_t>(i)), i, "w");
  }
  // Attacker rewrites block 1 *consistently* (recomputing its hash) — the
  // break must surface at the next link.
  auto& blocks = ledger.mutable_blocks_for_tampering();
  blocks[1] = make_block(1, blocks[0].hash, blocks[1].header.timestamp_ns,
                         "attacker", make_records(2, 999));
  const auto result = ledger.validate();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bad_index, 2u);  // prev-hash of block 2 no longer matches
}

TEST(Ledger, DetectsTimestampRegression) {
  Ledger ledger;
  ledger.append(make_records(1), 100, "w");
  auto next = make_block(1, ledger.tip_hash(), 50, "w", make_records(1));
  EXPECT_FALSE(ledger.append_external(next));  // timestamp decreased
}

TEST(Ledger, AppendExternalValidatesLinkage) {
  Ledger a;
  a.append(make_records(2), 10, "w");
  const Block good = make_block(1, a.tip_hash(), 20, "w", make_records(2, 7));

  Ledger replica;
  replica.append(make_records(2), 10, "w");  // same first block contents? No —
  // records differ per seed, so hashes differ; build the replica by syncing.
  Ledger synced;
  EXPECT_TRUE(synced.append_external(a.at(0)));
  EXPECT_TRUE(synced.append_external(good));
  EXPECT_EQ(synced.size(), 2u);
  EXPECT_TRUE(synced.validate().ok);

  // Wrong index.
  const Block bad_index = make_block(5, synced.tip_hash(), 30, "w", {});
  EXPECT_FALSE(synced.append_external(bad_index));
  // Broken prev link.
  const Block bad_link = make_block(2, Sha256::hash("x"), 30, "w", {});
  EXPECT_FALSE(synced.append_external(bad_link));
  // Tampered content.
  Block corrupt = make_block(2, synced.tip_hash(), 30, "w", make_records(1));
  corrupt.records[0][0] ^= 1;
  EXPECT_FALSE(synced.append_external(corrupt));
  EXPECT_EQ(synced.size(), 2u);
}

TEST(Ledger, EmptyLedgerValidates) {
  Ledger ledger;
  EXPECT_TRUE(ledger.validate().ok);
  EXPECT_EQ(ledger.tip_hash(), zero_digest());
}

class LedgerTamperSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LedgerTamperSweep, AnySingleByteFlipIsDetected) {
  // Property: flipping one byte of any record in any block breaks
  // validation (the paper's tamper-proof-storage claim).
  const std::size_t victim_block = GetParam();
  Ledger ledger;
  for (std::size_t i = 0; i < 6; ++i) {
    ledger.append(make_records(4, i), static_cast<std::int64_t>(i * 100), "w");
  }
  auto& blocks = ledger.mutable_blocks_for_tampering();
  auto& record = blocks[victim_block].records[1];
  record[record.size() / 2] ^= 0x10;
  const auto result = ledger.validate();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bad_index, victim_block);
}

INSTANTIATE_TEST_SUITE_P(Blocks, LedgerTamperSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Permissioned chain
// ---------------------------------------------------------------------------

TEST(Permissioned, RegisterAndAppend) {
  PermissionedChain chain;
  EXPECT_TRUE(chain.register_writer({"agg-1", "s1"}));
  EXPECT_FALSE(chain.register_writer({"agg-1", "s2"}));  // duplicate id
  EXPECT_TRUE(chain.is_authorized("agg-1"));

  const auto block = chain.append("agg-1", "s1", make_records(3), 10);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->header.writer, "agg-1");
  EXPECT_NE(block->signature, Digest{});
  EXPECT_TRUE(chain.validate().ok);
}

TEST(Permissioned, RejectsUnknownWriterAndWrongSecret) {
  PermissionedChain chain;
  chain.register_writer({"agg-1", "s1"});
  EXPECT_FALSE(chain.append("agg-2", "s1", make_records(1), 0).has_value());
  EXPECT_FALSE(chain.append("agg-1", "wrong", make_records(1), 0).has_value());
  EXPECT_EQ(chain.ledger().size(), 0u);
}

TEST(Permissioned, MultiWriterInterleaving) {
  PermissionedChain chain;
  chain.register_writer({"agg-1", "s1"});
  chain.register_writer({"agg-2", "s2"});
  for (int i = 0; i < 10; ++i) {
    const std::string writer = i % 2 == 0 ? "agg-1" : "agg-2";
    const std::string secret = i % 2 == 0 ? "s1" : "s2";
    ASSERT_TRUE(chain
                    .append(writer, secret,
                            make_records(2, static_cast<std::uint64_t>(i)),
                            i * 10)
                    .has_value());
  }
  EXPECT_EQ(chain.ledger().size(), 10u);
  EXPECT_TRUE(chain.validate().ok);
}

TEST(Permissioned, RevokedWriterCannotAppendButHistoryVerifies) {
  PermissionedChain chain;
  chain.register_writer({"agg-1", "s1"});
  chain.append("agg-1", "s1", make_records(1), 0);
  EXPECT_TRUE(chain.revoke_writer("agg-1"));
  EXPECT_FALSE(chain.is_authorized("agg-1"));
  EXPECT_FALSE(chain.append("agg-1", "s1", make_records(1), 1).has_value());
  EXPECT_TRUE(chain.validate().ok);  // historic block still verifies
}

TEST(Permissioned, ReregisterRevokedWriter) {
  PermissionedChain chain;
  chain.register_writer({"agg-1", "s1"});
  chain.revoke_writer("agg-1");
  EXPECT_TRUE(chain.register_writer({"agg-1", "s1"}));
  EXPECT_TRUE(chain.is_authorized("agg-1"));
}

TEST(Permissioned, ForgedSignatureDetected) {
  PermissionedChain chain;
  chain.register_writer({"agg-1", "s1"});
  chain.append("agg-1", "s1", make_records(2), 0);
  auto& blocks = chain.ledger().blocks();
  (void)blocks;
  chain.ledger().mutable_blocks_for_tampering()[0].signature[0] ^= 1;
  const auto result = chain.validate();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("signature"), std::string::npos);
}

TEST(Permissioned, SignatureIsKeyDependent) {
  const Digest h = Sha256::hash("block");
  EXPECT_NE(sign_block_hash(h, "secret-a"), sign_block_hash(h, "secret-b"));
  EXPECT_EQ(sign_block_hash(h, "secret-a"), sign_block_hash(h, "secret-a"));
}

TEST(Permissioned, RejectsEmptyWriterId) {
  PermissionedChain chain;
  EXPECT_FALSE(chain.register_writer({"", "s"}));
}

}  // namespace
}  // namespace emon::chain
