// Sharded scenario execution: digest parity between sequential (shards=1)
// and parallel (shards=N) runs, radio-island shard assignment, cross-shard
// frame routing under partitions, and cross-shard device migration.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/scenario.hpp"
#include "util/log.hpp"

namespace emon::core {
namespace {

using sim::seconds;

struct RunResult {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t blocks = 0;
  std::size_t shards = 0;
};

RunResult run(ScenarioSpec spec, std::size_t shards, double duration_s) {
  util::LogConfig::set_level(util::LogLevel::kError);
  Testbed bed{std::move(spec), TestbedOptions{shards}};
  bed.start();
  bed.run_for(sim::seconds_f(duration_s));
  RunResult result;
  result.digest = bed.trace().digest();
  result.events = bed.executed_events();
  result.blocks = bed.chain().ledger().size();
  result.shards = bed.shard_count();
  return result;
}

void expect_parity(const std::string& name, std::uint64_t seed,
                   double duration_s) {
  const RunResult seq = run(canned_scenario(name, seed), 1, duration_s);
  const RunResult par = run(canned_scenario(name, seed), 4, duration_s);
  EXPECT_EQ(seq.digest, par.digest) << name;
  EXPECT_EQ(seq.events, par.events) << name;
  EXPECT_EQ(seq.blocks, par.blocks) << name;
}

// ---------------------------------------------------------------------------
// Digest parity: every canned scenario, shards=1 vs shards=4
// ---------------------------------------------------------------------------

TEST(ShardParity, PaperFigure4) { expect_parity("paper_figure4", 42, 25.0); }

TEST(ShardParity, CampusRoaming) { expect_parity("campus_roaming", 7, 45.0); }

TEST(ShardParity, BlackoutDrill) { expect_parity("blackout_drill", 5, 65.0); }

TEST(ShardParity, FlashCrowd) { expect_parity("flash_crowd", 3, 10.0); }

TEST(ShardParity, MetroFleetReduced) {
  // The benchmark shape at test scale: 8 radio-isolated WANs, 200 devices,
  // light churn whose random destinations cross shard boundaries.  25 s
  // covers the first departures (12 s) and arrivals (+6 s transit).
  const RunResult seq = run(metro_fleet(8, 200, 1), 1, 25.0);
  const RunResult par = run(metro_fleet(8, 200, 1), 4, 25.0);
  EXPECT_EQ(par.shards, 4u);
  EXPECT_EQ(seq.digest, par.digest);
  EXPECT_EQ(seq.events, par.events);
}

// ---------------------------------------------------------------------------
// Shard assignment: radio islands
// ---------------------------------------------------------------------------

TEST(ShardAssignment, RadioCoupledNetworksStayTogether) {
  // 150 m spacing: a far-corner device can plausibly prefer the neighbour
  // AP, so the networks are one island and the effective count is 1.
  Testbed bed{campus_roaming(7), TestbedOptions{4}};
  EXPECT_EQ(bed.shard_count(), 1u);
}

TEST(ShardAssignment, IsolatedNetworksSplitContiguously) {
  Testbed bed{metro_fleet(8, 64, 1), TestbedOptions{4}};
  EXPECT_EQ(bed.shard_count(), 4u);
  // Contiguous, monotone assignment (the trace merge tie-break relies on
  // shard order == network order).
  std::size_t prev = 0;
  for (std::size_t n = 0; n < bed.network_count(); ++n) {
    const std::size_t s = bed.shard_of_network(n);
    EXPECT_GE(s, prev);
    EXPECT_LE(s, prev + 1);
    prev = s;
  }
  EXPECT_EQ(bed.shard_of_network(bed.network_count() - 1), 3u);
}

TEST(ShardAssignment, OneShardPerIslandWhenRequested) {
  // Regression: requesting exactly as many shards as there are islands
  // used to collapse everything into shard 0 (packing off-by-one).
  Testbed bed{metro_fleet(8, 64, 1), TestbedOptions{8}};
  EXPECT_EQ(bed.shard_count(), 8u);
  for (std::size_t n = 0; n < bed.network_count(); ++n) {
    EXPECT_EQ(bed.shard_of_network(n), n);
  }
  // Requests beyond the island count cap at the island count.
  Testbed more{metro_fleet(8, 64, 1), TestbedOptions{32}};
  EXPECT_EQ(more.shard_count(), 8u);
}

TEST(ShardAssignment, OutOfRangeFaultRejectedBeforePartitioning) {
  // Shard assignment runs in the member-init list, before the constructor
  // body validates faults; an out-of-range outage target must still end
  // in the clean invalid_argument, not an out-of-bounds access.
  ScenarioSpec spec = FleetBuilder{}
                          .name("bad_fault")
                          .networks(4, 2)
                          .spacing_m(400.0)
                          .ap_outage(999, sim::SimTime{seconds(5).ns()},
                                     seconds(5))
                          .seed(3)
                          .spec();
  EXPECT_THROW((Testbed{std::move(spec), TestbedOptions{4}}),
               std::invalid_argument);
}

TEST(ShardAssignment, OutageFaultFusesNeighbours) {
  // Same isolated spacing, but an AP outage makes audible neighbours
  // legitimate failover targets — at 400 m nothing is audible, so the
  // count still splits; at 200 m the outage fuses the pair.
  ScenarioSpec spec = FleetBuilder{}
                          .name("outage_fuse")
                          .networks(4, 2)
                          .spacing_m(200.0)
                          .ap_outage(1, sim::SimTime{seconds(5).ns()},
                                     seconds(5))
                          .seed(9)
                          .spec();
  Testbed bed{std::move(spec), TestbedOptions{4}};
  EXPECT_EQ(bed.shard_of_network(0), bed.shard_of_network(1))
      << "outage target and its audible neighbour must co-shard";
}

// ---------------------------------------------------------------------------
// Cross-shard behaviour: partition window spanning a shard boundary
// ---------------------------------------------------------------------------

ScenarioSpec partitioned_isolated(std::uint64_t seed) {
  ChurnSpec churn;
  churn.roamer_fraction = 0.3;
  churn.trips_per_roamer = 2;
  churn.first_departure = seconds(8);
  churn.dwell_min = seconds(6);
  churn.dwell_max = seconds(12);
  churn.transit = seconds(6);
  return FleetBuilder{}
      .name("partitioned_isolated")
      .networks(8, 6)
      .spacing_m(400.0)  // radio-isolated: 4-way shardable
      .churn(churn)
      .backhaul_partition(3, sim::SimTime{seconds(12).ns()}, seconds(10))
      .tamper_burst(10, sim::SimTime{seconds(9).ns()}, seconds(8), 0.4)
      .seed(seed)
      .spec();
}

TEST(ShardParity, PartitionAcrossShardBoundary) {
  // wan-4 sits mid-fleet, so during [12 s, 22 s) every frame from other
  // shards toward agg-4 (temporary-registration verifies, roam forwards,
  // block broadcasts) must be refused identically in both modes.
  const RunResult seq = run(partitioned_isolated(11), 1, 40.0);
  const RunResult par = run(partitioned_isolated(11), 4, 40.0);
  EXPECT_EQ(par.shards, 4u);
  EXPECT_EQ(seq.digest, par.digest);
  EXPECT_EQ(seq.events, par.events);
  EXPECT_EQ(seq.blocks, par.blocks);
  EXPECT_GT(seq.blocks, 0u);  // the run commits blocks through the queue
}

TEST(ShardFaults, PartitionWindowDropsAndRestores) {
  Testbed bed{partitioned_isolated(11), TestbedOptions{4}};
  bed.start();
  bed.run_for(seconds(14));  // inside the window
  EXPECT_FALSE(bed.backhaul().node_up("agg-4"));
  EXPECT_FALSE(bed.backhaul().route("agg-1", "agg-4").has_value());
  bed.run_for(seconds(11));  // past 22 s: restored
  EXPECT_TRUE(bed.backhaul().node_up("agg-4"));
  EXPECT_TRUE(bed.backhaul().route("agg-1", "agg-4").has_value());
}

// ---------------------------------------------------------------------------
// Cross-shard migration: roamers keep working after changing threads
// ---------------------------------------------------------------------------

TEST(ShardMigration, RoamersReportFromForeignShards) {
  Testbed bed{partitioned_isolated(11), TestbedOptions{4}};
  bed.start();
  bed.run_for(seconds(40));
  std::size_t migrated_and_reporting = 0;
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    const auto& dev = bed.device(i);
    if (dev.state() != DeviceState::kReporting) {
      continue;
    }
    // Find devices now living on a different shard than their home.
    for (std::size_t n = 0; n < bed.network_count(); ++n) {
      if (bed.network_name(n) == dev.plugged_network() &&
          bed.shard_of_network(n) !=
              bed.shard_of_network(bed.home_of(i))) {
        ++migrated_and_reporting;
      }
    }
  }
  EXPECT_GT(migrated_and_reporting, 0u)
      << "at least one roamer must report from a foreign shard";
}

// ---------------------------------------------------------------------------
// Determinism of the sharded mode itself (same-mode repeatability)
// ---------------------------------------------------------------------------

TEST(ShardParity, ShardedRunIsRepeatable) {
  const RunResult a = run(partitioned_isolated(13), 4, 30.0);
  const RunResult b = run(partitioned_isolated(13), 4, 30.0);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace emon::core
