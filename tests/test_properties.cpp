// Property-based sweeps (parameterized gtest) over the system's invariants:
//  * T_handshake distribution across many seeds,
//  * energy conservation across roaming for arbitrary transits,
//  * sensor accuracy across the whole INA219 part population,
//  * chain tamper evidence for arbitrary flip positions,
//  * demand forecasting and peak-shaving scheduler behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "chain/ledger.hpp"
#include "core/forecast.hpp"
#include "core/scenario.hpp"
#include "util/rng.hpp"

namespace emon::core {
namespace {

using sim::seconds;
using sim::SimTime;

// ---------------------------------------------------------------------------
// T_handshake across seeds (property: always within the paper band)
// ---------------------------------------------------------------------------

class HandshakeSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HandshakeSeedSweep, TemporaryRegistrationWithinBand) {
  Testbed bed{paper_figure4(GetParam())};
  bed.start();
  bed.run_for(seconds(20));
  ASSERT_EQ(bed.device(0).state(), DeviceState::kReporting);
  bed.device(0).move_to(bed.network_name(1),
                        net::Position{bed.network_position(1).x + 2.0, 0.0},
                        seconds(8));
  bed.run_for(seconds(25));
  const auto& handshakes = bed.device(0).handshakes();
  ASSERT_EQ(handshakes.size(), 2u);
  const double t = handshakes[1].duration().to_seconds();
  EXPECT_GE(t, 5.3) << "seed " << GetParam();
  EXPECT_LE(t, 6.8) << "seed " << GetParam();
  EXPECT_EQ(handshakes[1].membership, MembershipKind::kTemporary);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandshakeSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------------------------------------------------------------------------
// Energy conservation across arbitrary transits
// ---------------------------------------------------------------------------

class TransitSweep : public ::testing::TestWithParam<int> {};

TEST_P(TransitSweep, BilledEnergyMatchesMeterForAnyTransit) {
  const int transit_s = GetParam();
  Testbed bed{paper_figure4(7000 + static_cast<std::uint64_t>(transit_s))};
  bed.start();
  bed.run_for(seconds(15));
  bed.device(0).move_to(bed.network_name(1),
                        net::Position{bed.network_position(1).x + 2.0, 0.0},
                        seconds(transit_s));
  bed.run_for(seconds(30 + transit_s));

  const double metered =
      util::as_milliwatt_hours(bed.device(0).meter().total_energy());
  const auto invoice = bed.aggregator(0).billing().invoice_for("dev-1");
  // All consumed energy ends up billed at home (in-flight slack allowed).
  EXPECT_NEAR(invoice.total_energy_mwh, metered, 0.05 * metered + 0.05)
      << "transit " << transit_s << " s";
}

INSTANTIATE_TEST_SUITE_P(Transits, TransitSweep,
                         ::testing::Values(1, 5, 10, 20, 40));

// ---------------------------------------------------------------------------
// INA219 part-population accuracy
// ---------------------------------------------------------------------------

class SensorPopulationSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SensorPopulationSweep, PartErrorWithinCombinedBudget) {
  // Any part from the population must measure a 150 mA load within the
  // combined offset+gain+quantization+noise budget.
  hw::Ina219 sensor{0x40, hw::Ina219Params{},
                    [] {
                      return hw::OperatingPoint{util::milliamps(150.0),
                                                util::volts(5.0)};
                    },
                    util::Rng{GetParam()}};
  sensor.calibrate_for(util::amps(3.2));
  util::RunningStats readings;
  for (int i = 0; i < 50; ++i) {
    sensor.convert();
    readings.add(util::as_milliamps(*sensor.decode_current()));
  }
  // Mean reading: offset (0.5) + gain (0.75) + LSB (~0.1) + noise margin.
  EXPECT_NEAR(readings.mean(), 150.0, 1.6) << "seed " << GetParam();
  // Repeatability: noise sigma well under 1 mA.
  EXPECT_LT(readings.stddev(), 0.6);
}

INSTANTIATE_TEST_SUITE_P(Parts, SensorPopulationSweep,
                         ::testing::Range<std::uint64_t>(100, 120));

// ---------------------------------------------------------------------------
// Chain tamper evidence for arbitrary positions
// ---------------------------------------------------------------------------

struct TamperPoint {
  std::size_t block;
  std::size_t record;
  std::size_t byte;
};

class ChainFlipSweep : public ::testing::TestWithParam<TamperPoint> {};

TEST_P(ChainFlipSweep, AnyFlipAnywhereDetected) {
  const TamperPoint point = GetParam();
  chain::Ledger ledger;
  util::Rng rng{1};
  for (std::size_t b = 0; b < 5; ++b) {
    std::vector<chain::RecordBytes> records;
    for (int r = 0; r < 4; ++r) {
      chain::RecordBytes rec(32);
      for (auto& byte : rec) {
        byte = static_cast<std::uint8_t>(rng.next());
      }
      records.push_back(std::move(rec));
    }
    ledger.append(std::move(records), static_cast<std::int64_t>(b), "w");
  }
  ASSERT_TRUE(ledger.validate().ok);
  auto& blocks = ledger.mutable_blocks_for_tampering();
  blocks[point.block].records[point.record][point.byte] ^= 0x01;
  const auto result = ledger.validate();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bad_index, point.block);
}

INSTANTIATE_TEST_SUITE_P(
    Positions, ChainFlipSweep,
    ::testing::Values(TamperPoint{0, 0, 0}, TamperPoint{0, 3, 31},
                      TamperPoint{1, 2, 15}, TamperPoint{2, 0, 7},
                      TamperPoint{3, 1, 23}, TamperPoint{4, 3, 0},
                      TamperPoint{4, 0, 31}));

// ---------------------------------------------------------------------------
// Demand forecasting
// ---------------------------------------------------------------------------

TEST(Forecast, NeedsTwoSamplesToPredict) {
  DemandForecaster f;
  EXPECT_FALSE(f.predict().has_value());
  EXPECT_FALSE(f.observe(100.0).has_value());
  EXPECT_FALSE(f.predict().has_value());
  EXPECT_FALSE(f.observe(110.0).has_value());
  EXPECT_TRUE(f.predict().has_value());
}

TEST(Forecast, TracksLinearTrendExactly) {
  DemandForecaster f;
  // Perfectly linear demand: predictions converge onto the line.
  for (int i = 0; i < 50; ++i) {
    f.observe(100.0 + 5.0 * i);
  }
  const auto next = f.predict(1);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR(*next, 100.0 + 5.0 * 50, 2.0);
  const auto later = f.predict(10);
  EXPECT_NEAR(*later, 100.0 + 5.0 * 59, 4.0);
}

TEST(Forecast, ConstantDemandZeroError) {
  DemandForecaster f;
  for (int i = 0; i < 30; ++i) {
    f.observe(42.0);
  }
  EXPECT_NEAR(f.mean_absolute_error(), 0.0, 1e-9);
  EXPECT_NEAR(*f.predict(5), 42.0, 1e-9);
}

TEST(Forecast, NoisyDemandBoundedError) {
  DemandForecaster f;
  util::Rng rng{9};
  for (int i = 0; i < 500; ++i) {
    f.observe(200.0 + rng.normal(0.0, 10.0));
  }
  // MAE of a smoother on N(200, 10) noise stays near the noise scale.
  EXPECT_LT(f.mean_absolute_error(), 15.0);
  EXPECT_GT(f.mean_absolute_error(), 4.0);
  EXPECT_LT(f.mape(), 8.0);
}

class ForecastStepSweep : public ::testing::TestWithParam<double> {};

TEST_P(ForecastStepSweep, AdaptsAfterLevelShift) {
  const double shift = GetParam();
  DemandForecaster f;
  for (int i = 0; i < 40; ++i) {
    f.observe(100.0);
  }
  for (int i = 0; i < 40; ++i) {
    f.observe(100.0 + shift);
  }
  EXPECT_NEAR(*f.predict(1), 100.0 + shift, std::fabs(shift) * 0.15 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Shifts, ForecastStepSweep,
                         ::testing::Values(50.0, 200.0, -60.0));

// ---------------------------------------------------------------------------
// Peak-shaving scheduler
// ---------------------------------------------------------------------------

TEST(Scheduler, PlacesJobInValley) {
  // Base demand has a valley at slots 4-7.
  std::vector<double> base{300, 300, 250, 200, 50, 50, 50, 50, 250, 300};
  const auto result = schedule_deferrable(
      base, {DeferrableJob{"charge", 3, 200.0, 0, 9}});
  ASSERT_EQ(result.placements.size(), 1u);
  EXPECT_TRUE(result.placements[0].feasible);
  EXPECT_GE(result.placements[0].start_slot, 4u);
  EXPECT_LE(result.placements[0].start_slot, 5u);
  EXPECT_DOUBLE_EQ(result.peak_after_ma, 300.0);  // peak unchanged
}

TEST(Scheduler, RespectsReleaseAndDeadline) {
  std::vector<double> base(10, 100.0);
  const auto result = schedule_deferrable(
      base, {DeferrableJob{"job", 2, 50.0, 6, 8}});
  ASSERT_TRUE(result.placements[0].feasible);
  EXPECT_GE(result.placements[0].start_slot, 6u);
  EXPECT_LE(result.placements[0].start_slot + 1, 8u);
}

TEST(Scheduler, InfeasibleJobReported) {
  std::vector<double> base(4, 10.0);
  const auto result = schedule_deferrable(
      base, {DeferrableJob{"too-long", 6, 50.0, 0, 3},
             DeferrableJob{"window-too-tight", 3, 50.0, 2, 3}});
  EXPECT_EQ(result.infeasible, 2u);
  EXPECT_FALSE(result.placements[0].feasible);
  EXPECT_FALSE(result.placements[1].feasible);
  EXPECT_DOUBLE_EQ(result.peak_after_ma, 10.0);
}

TEST(Scheduler, SchedulingNeverWorseThanNaive) {
  // Property: placing all jobs at their release (naive) is never better
  // than the scheduler's placement.
  util::Rng rng{33};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> base(24);
    for (auto& d : base) {
      d = rng.uniform(50.0, 400.0);
    }
    std::vector<DeferrableJob> jobs;
    for (int j = 0; j < 5; ++j) {
      DeferrableJob job;
      job.name = "job" + std::to_string(j);
      job.slots = static_cast<std::size_t>(rng.uniform_int(1, 4));
      job.current_ma = rng.uniform(50.0, 300.0);
      job.release = static_cast<std::size_t>(rng.uniform_int(0, 10));
      job.deadline = job.release + job.slots +
                     static_cast<std::size_t>(rng.uniform_int(2, 12));
      job.deadline = std::min<std::size_t>(job.deadline, 23);
      jobs.push_back(job);
    }
    // Naive: everything at release.
    std::vector<double> naive = base;
    for (const auto& job : jobs) {
      if (job.release + job.slots <= naive.size()) {
        for (std::size_t s = job.release; s < job.release + job.slots; ++s) {
          naive[s] += job.current_ma;
        }
      }
    }
    double naive_peak = 0.0;
    for (double d : naive) {
      naive_peak = std::max(naive_peak, d);
    }
    const auto result = schedule_deferrable(base, jobs);
    if (result.infeasible == 0) {
      EXPECT_LE(result.peak_after_ma, naive_peak + 1e-9)
          << "trial " << trial;
    }
  }
}

TEST(Scheduler, ConservesEnergy) {
  // Total scheduled mA-slots equal base + sum of feasible jobs.
  std::vector<double> base{10, 20, 30, 40};
  const auto result = schedule_deferrable(
      base, {DeferrableJob{"a", 2, 100.0, 0, 3},
             DeferrableJob{"b", 1, 50.0, 1, 2}});
  double total_after = 0.0;
  for (double d : result.demand_ma) {
    total_after += d;
  }
  EXPECT_DOUBLE_EQ(total_after, 10 + 20 + 30 + 40 + 2 * 100.0 + 50.0);
}

// ---------------------------------------------------------------------------
// Forecast over live testbed demand
// ---------------------------------------------------------------------------

TEST(ForecastIntegration, PredictsAggregatorWindowDemand) {
  Testbed bed{FleetBuilder{}.name("forecast").networks(1, 2).seed(99).spec()};
  bed.start();
  bed.run_for(seconds(90));

  // Feed the verification-window feeder means into the forecaster.
  DemandForecaster forecaster;
  for (const auto& window : bed.aggregator(0).verification_history()) {
    forecaster.observe(window.feeder_ma);
  }
  ASSERT_GT(forecaster.observations(), 60u);
  // Duty-cycled loads are hard; still, MAPE must beat a coin flip by far.
  EXPECT_LT(forecaster.mape(), 40.0);
  EXPECT_TRUE(forecaster.predict(1).has_value());
}

}  // namespace
}  // namespace emon::core
