// Unit tests for emon::hw — I2C bus routing, the register-accurate INA219,
// the drifting DS3231 and the ESP32 power/load models.

#include <gtest/gtest.h>

#include <cmath>

#include "hw/ds3231.hpp"
#include "hw/esp32.hpp"
#include "hw/i2c.hpp"
#include "hw/ina219.hpp"
#include "hw/load_profile.hpp"
#include "sim/kernel.hpp"
#include "util/rng.hpp"

namespace emon::hw {
namespace {

using sim::milliseconds;
using sim::seconds;
using sim::SimTime;
using util::milliamps;
using util::volts;

/// A fake register peripheral for bus tests.
class FakePeripheral final : public I2cPeripheral {
 public:
  explicit FakePeripheral(std::uint8_t addr) : addr_(addr) {}
  [[nodiscard]] std::uint8_t address() const noexcept override { return addr_; }
  std::optional<std::uint16_t> read_register(std::uint8_t reg) override {
    if (reg > 3) {
      return std::nullopt;
    }
    return static_cast<std::uint16_t>(reg * 100 + addr_);
  }
  bool write_register(std::uint8_t reg, std::uint16_t value) override {
    if (reg > 3) {
      return false;
    }
    last_write_ = {reg, value};
    return true;
  }
  std::pair<std::uint8_t, std::uint16_t> last_write_{};

 private:
  std::uint8_t addr_;
};

// ---------------------------------------------------------------------------
// I2C bus
// ---------------------------------------------------------------------------

TEST(I2c, RoutesByAddress) {
  I2cBus bus;
  FakePeripheral a{0x40}, b{0x41};
  EXPECT_TRUE(bus.attach(a));
  EXPECT_TRUE(bus.attach(b));
  EXPECT_FALSE(bus.attach(a));  // address collision

  const auto ra = bus.read(0x40, 1);
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(ra->value, 100 + 0x40);
  const auto rb = bus.read(0x41, 2);
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(rb->value, 200 + 0x41);
}

TEST(I2c, NackOnMissingDeviceOrRegister) {
  I2cBus bus;
  FakePeripheral a{0x40};
  bus.attach(a);
  EXPECT_FALSE(bus.read(0x50, 0).has_value());
  EXPECT_FALSE(bus.read(0x40, 9).has_value());
  EXPECT_FALSE(bus.write(0x40, 9, 1).has_value());
}

TEST(I2c, WriteReachesPeripheral) {
  I2cBus bus;
  FakePeripheral a{0x40};
  bus.attach(a);
  ASSERT_TRUE(bus.write(0x40, 2, 0xbeef).has_value());
  EXPECT_EQ(a.last_write_.first, 2);
  EXPECT_EQ(a.last_write_.second, 0xbeef);
}

TEST(I2c, BusTimeScalesWithClock) {
  I2cBus fast{400'000};
  I2cBus slow{100'000};
  FakePeripheral a{0x40}, b{0x40};
  fast.attach(a);
  slow.attach(b);
  const auto tf = fast.read(0x40, 0)->bus_time;
  const auto ts = slow.read(0x40, 0)->bus_time;
  EXPECT_NEAR(static_cast<double>(ts.ns()) / static_cast<double>(tf.ns()), 4.0,
              0.01);
  // 5 bytes x 9 bits at 100 kHz = 450 us.
  EXPECT_NEAR(ts.to_seconds(), 450e-6, 1e-9);
}

TEST(I2c, DetachRemoves) {
  I2cBus bus;
  FakePeripheral a{0x40};
  bus.attach(a);
  EXPECT_TRUE(bus.detach(0x40));
  EXPECT_FALSE(bus.detach(0x40));
  EXPECT_FALSE(bus.read(0x40, 0).has_value());
}

// ---------------------------------------------------------------------------
// INA219
// ---------------------------------------------------------------------------

Ina219 make_sensor(double true_ma, Ina219Params params = {},
                   std::uint64_t seed = 42) {
  return Ina219{0x40, params,
                [true_ma] {
                  return OperatingPoint{milliamps(true_ma), volts(5.0)};
                },
                util::Rng{seed}};
}

TEST(Ina219, RequiresCalibrationForCurrent) {
  Ina219 s = make_sensor(100.0);
  s.convert();
  EXPECT_FALSE(s.decode_current().has_value());
  EXPECT_FALSE(s.decode_power().has_value());
  s.calibrate_for(util::amps(3.2));
  s.convert();
  EXPECT_TRUE(s.decode_current().has_value());
}

TEST(Ina219, MeasuresWithinErrorBudget) {
  // 0.5 mA offset + 0.5 % gain + quantization: a 100 mA reading must land
  // within ~1.2 mA of the truth.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Ina219 s = make_sensor(100.0, {}, seed);
    s.calibrate_for(util::amps(3.2));
    s.convert();
    const auto i = s.decode_current();
    ASSERT_TRUE(i.has_value());
    EXPECT_NEAR(util::as_milliamps(*i), 100.0, 1.5) << "seed " << seed;
  }
}

TEST(Ina219, OffsetWithinDatasheetBound) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Ina219 s = make_sensor(0.0, {}, seed);
    EXPECT_LE(std::fabs(util::as_milliamps(s.true_offset())), 0.5);
    EXPECT_NEAR(s.true_gain(), 1.0, 0.005);
  }
}

TEST(Ina219, BusVoltageQuantizedTo4mV) {
  Ina219 s{0x40, {},
           [] { return OperatingPoint{milliamps(10.0), volts(5.001)}; },
           util::Rng{1}};
  s.convert();
  const double mv = util::as_millivolts(s.decode_bus_voltage());
  EXPECT_NEAR(mv, 5000.0, 4.1);
  EXPECT_DOUBLE_EQ(std::fmod(mv, 4.0), 0.0);
}

TEST(Ina219, PgaSaturates) {
  // 40 mV full scale with 0.1 ohm shunt saturates at 400 mA.
  Ina219Params params;
  params.pga = Ina219Pga::kDiv1_40mV;
  Ina219 s = make_sensor(2000.0, params);
  s.calibrate_for(util::amps(3.2));
  s.convert();
  const auto i = s.decode_current();
  ASSERT_TRUE(i.has_value());
  EXPECT_LE(util::as_milliamps(*i), 405.0);  // clamped at PGA range
}

TEST(Ina219, NegativeCurrentSupported) {
  Ina219 s = make_sensor(-150.0);
  s.calibrate_for(util::amps(3.2));
  s.convert();
  const auto i = s.decode_current();
  ASSERT_TRUE(i.has_value());
  EXPECT_NEAR(util::as_milliamps(*i), -150.0, 1.5);
}

TEST(Ina219, PowerRegisterConsistent) {
  Ina219 s = make_sensor(200.0);
  s.calibrate_for(util::amps(3.2));
  s.convert();
  const auto p = s.decode_power();
  ASSERT_TRUE(p.has_value());
  // P = V * I = 5 V * 0.2 A = 1 W (within sensor error + power LSB).
  EXPECT_NEAR(p->value(), 1.0, 0.03);
}

TEST(Ina219, RegisterInterfaceMatchesDecoders) {
  Ina219 s = make_sensor(100.0);
  s.calibrate_for(util::amps(3.2));
  I2cBus bus;
  bus.attach(s);
  s.convert();
  const auto current_reg =
      bus.read(0x40, static_cast<std::uint8_t>(Ina219Register::kCurrent));
  ASSERT_TRUE(current_reg.has_value());
  const auto decoded = s.decode_current();
  ASSERT_TRUE(decoded.has_value());
  // Register is the raw int16 backing the decode.
  const auto raw = static_cast<std::int16_t>(current_reg->value);
  EXPECT_EQ(raw == 0, util::as_milliamps(*decoded) == 0.0);
}

TEST(Ina219, ResultRegistersReadOnly) {
  Ina219 s = make_sensor(10.0);
  EXPECT_FALSE(s.write_register(
      static_cast<std::uint8_t>(Ina219Register::kCurrent), 1));
  EXPECT_FALSE(s.write_register(
      static_cast<std::uint8_t>(Ina219Register::kBusVoltage), 1));
  EXPECT_TRUE(s.write_register(
      static_cast<std::uint8_t>(Ina219Register::kConfig), 0x399f));
}

TEST(Ina219, ConversionTimeMatchesDatasheet) {
  Ina219 s = make_sensor(10.0);
  EXPECT_EQ(s.convert().ns(), sim::microseconds(532).ns());
  EXPECT_EQ(s.conversions(), 1u);
}

TEST(Ina219, CalibrationRejectsNonPositive) {
  Ina219 s = make_sensor(10.0);
  EXPECT_THROW(s.calibrate_for(util::amps(0.0)), std::invalid_argument);
}

TEST(Ina219, ConstructionRequiresProbeAndShunt) {
  EXPECT_THROW(Ina219(0x40, {}, nullptr, util::Rng{1}), std::invalid_argument);
  Ina219Params bad;
  bad.shunt = util::ohms(0.0);
  EXPECT_THROW(Ina219(0x40, bad,
                      [] {
                        return OperatingPoint{};
                      },
                      util::Rng{1}),
               std::invalid_argument);
}

class Ina219AccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(Ina219AccuracySweep, RelativeErrorBounded) {
  // Property: across the operating range, |error| <= offset + gain*I + LSB.
  const double true_ma = GetParam();
  Ina219 s = make_sensor(true_ma, {}, 7);
  s.calibrate_for(util::amps(3.2));
  s.convert();
  const auto i = s.decode_current();
  ASSERT_TRUE(i.has_value());
  const double lsb_ma = 3200.0 / 32768.0;  // calibration LSB
  const double budget =
      0.5 + 0.005 * true_ma + 2.0 * lsb_ma + 0.12 /*noise 1 sigma-ish*/;
  EXPECT_NEAR(util::as_milliamps(*i), true_ma, budget) << true_ma << " mA";
}

INSTANTIATE_TEST_SUITE_P(Range, Ina219AccuracySweep,
                         ::testing::Values(1.0, 5.0, 20.0, 50.0, 100.0, 250.0,
                                           500.0, 1000.0, 2000.0, 3000.0));

// ---------------------------------------------------------------------------
// DS3231
// ---------------------------------------------------------------------------

TEST(Ds3231, BcdHelpers) {
  EXPECT_EQ(to_bcd(0), 0x00);
  EXPECT_EQ(to_bcd(9), 0x09);
  EXPECT_EQ(to_bcd(10), 0x10);
  EXPECT_EQ(to_bcd(59), 0x59);
  for (std::uint8_t v = 0; v < 60; ++v) {
    EXPECT_EQ(from_bcd(to_bcd(v)), v);
  }
}

TEST(Ds3231, DriftWithinDatasheetBand) {
  sim::Kernel k;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Ds3231 rtc{0x68, {}, [&k] { return k.now(); }, util::Rng{seed}};
    EXPECT_LE(std::fabs(rtc.true_drift_ppm()), 2.0);
  }
}

TEST(Ds3231, ClockDriftsAtConfiguredRate) {
  sim::Kernel k;
  Ds3231 rtc{0x68, {}, [&k] { return k.now(); }, util::Rng{3}};
  const double ppm = rtc.true_drift_ppm();
  k.run_until(SimTime{seconds(1000).ns()});
  // After 1000 s, error = 1000 * ppm * 1e-6 seconds.
  EXPECT_NEAR(rtc.error().to_seconds(), 1000.0 * ppm * 1e-6, 1e-6);
}

TEST(Ds3231, AdjustSlewsClock) {
  sim::Kernel k;
  Ds3231 rtc{0x68, {}, [&k] { return k.now(); }, util::Rng{3}};
  k.run_until(SimTime{seconds(100).ns()});
  rtc.adjust(-rtc.error());
  EXPECT_NEAR(rtc.error().to_seconds(), 0.0, 1e-9);
  // Drift resumes after the correction.
  k.run_until(SimTime{seconds(200).ns()});
  EXPECT_NEAR(rtc.error().to_seconds(), 100.0 * rtc.true_drift_ppm() * 1e-6,
              1e-6);
}

TEST(Ds3231, TimeRegistersReadBcdClock) {
  sim::Kernel k;
  Ds3231 rtc{0x68, Ds3231Params{0.0, 0.0}, [&k] { return k.now(); },
             util::Rng{3}};
  // 1 h 2 min 3 s.
  k.run_until(SimTime{(3600 + 120 + 3) * 1'000'000'000LL});
  EXPECT_EQ(rtc.read_register(0x00).value(), to_bcd(3));   // seconds
  EXPECT_EQ(rtc.read_register(0x01).value(), to_bcd(2));   // minutes
  EXPECT_EQ(rtc.read_register(0x02).value(), to_bcd(1));   // hours
}

TEST(Ds3231, SetLocalTime) {
  sim::Kernel k;
  Ds3231 rtc{0x68, {}, [&k] { return k.now(); }, util::Rng{3}};
  rtc.set_local_time(SimTime{seconds(500).ns()});
  EXPECT_NEAR(rtc.local_time().to_seconds(), 500.0, 1e-9);
}

TEST(Ds3231, WritingSecondsRegisterSetsClock) {
  sim::Kernel k;
  Ds3231 rtc{0x68, Ds3231Params{0.0, 0.0}, [&k] { return k.now(); },
             util::Rng{3}};
  ASSERT_TRUE(rtc.write_register(0x00, to_bcd(42)));
  EXPECT_EQ(rtc.read_register(0x00).value(), to_bcd(42));
}

TEST(Ds3231, TemperatureReadOnly) {
  sim::Kernel k;
  Ds3231 rtc{0x68, {}, [&k] { return k.now(); }, util::Rng{3}};
  EXPECT_FALSE(rtc.write_register(0x11, 50));
  EXPECT_EQ(rtc.read_register(0x11).value(), 25);
}

// ---------------------------------------------------------------------------
// Load profiles
// ---------------------------------------------------------------------------

TEST(LoadProfile, ConstantIsConstant) {
  ConstantLoad load{milliamps(42.0)};
  EXPECT_DOUBLE_EQ(util::as_milliamps(load.current_at(SimTime{0})), 42.0);
  EXPECT_DOUBLE_EQ(
      util::as_milliamps(load.current_at(SimTime{seconds(100).ns()})), 42.0);
}

TEST(LoadProfile, DutyCycleShape) {
  DutyCycleLoad load{milliamps(10.0), milliamps(100.0), seconds(10), 0.3};
  // First 3 s high, rest low.
  EXPECT_DOUBLE_EQ(util::as_milliamps(load.current_at(SimTime{0})), 100.0);
  EXPECT_DOUBLE_EQ(
      util::as_milliamps(load.current_at(SimTime{seconds(2).ns()})), 100.0);
  EXPECT_DOUBLE_EQ(
      util::as_milliamps(load.current_at(SimTime{seconds(4).ns()})), 10.0);
  // Periodic.
  EXPECT_DOUBLE_EQ(
      util::as_milliamps(load.current_at(SimTime{seconds(12).ns()})), 100.0);
}

TEST(LoadProfile, DutyCycleValidation) {
  EXPECT_THROW(
      DutyCycleLoad(milliamps(1), milliamps(2), sim::Duration{0}, 0.5),
      std::invalid_argument);
  EXPECT_THROW(DutyCycleLoad(milliamps(1), milliamps(2), seconds(1), 1.5),
               std::invalid_argument);
}

TEST(LoadProfile, NoisyLoadIsDeterministicPerTime) {
  auto base = std::make_shared<ConstantLoad>(milliamps(100.0));
  NoisyLoad noisy{base, 0.1, milliseconds(50), 12345};
  const auto t = SimTime{seconds(1).ns()};
  EXPECT_DOUBLE_EQ(noisy.current_at(t).value(), noisy.current_at(t).value());
  // Different bins differ (almost surely).
  const auto t2 = SimTime{seconds(2).ns()};
  EXPECT_NE(noisy.current_at(t).value(), noisy.current_at(t2).value());
}

TEST(LoadProfile, NoisyLoadMeanPreserved) {
  auto base = std::make_shared<ConstantLoad>(milliamps(100.0));
  NoisyLoad noisy{base, 0.05, milliseconds(10), 9};
  double sum = 0.0;
  constexpr int kN = 10'000;
  for (int i = 0; i < kN; ++i) {
    sum += util::as_milliamps(noisy.current_at(SimTime{i * 10'000'000LL}));
  }
  EXPECT_NEAR(sum / kN, 100.0, 1.0);
}

TEST(LoadProfile, NoisyLoadNeverNegative) {
  auto base = std::make_shared<ConstantLoad>(milliamps(1.0));
  NoisyLoad noisy{base, 3.0, milliseconds(10), 9};  // huge sigma
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_GE(noisy.current_at(SimTime{i * 10'000'000LL}).value(), 0.0);
  }
}

TEST(LoadProfile, CcCvChargeCurve) {
  const auto cc_end = SimTime{seconds(100).ns()};
  CcCvChargeLoad charge{milliamps(1000.0), cc_end, seconds(50),
                        milliamps(50.0)};
  EXPECT_DOUBLE_EQ(
      util::as_milliamps(charge.current_at(SimTime{seconds(10).ns()})),
      1000.0);
  EXPECT_DOUBLE_EQ(util::as_milliamps(charge.current_at(cc_end)), 1000.0);
  // One time constant into CV: floor + (cc - floor)/e.
  const double at_tau = util::as_milliamps(
      charge.current_at(SimTime{seconds(150).ns()}));
  EXPECT_NEAR(at_tau, 50.0 + 950.0 / std::numbers::e, 1.0);
  // Far tail approaches the floor.
  const double tail = util::as_milliamps(
      charge.current_at(SimTime{seconds(1000).ns()}));
  EXPECT_NEAR(tail, 50.0, 1.0);
}

TEST(LoadProfile, CcCvBeforeStartIsZero) {
  CcCvChargeLoad charge{milliamps(1000.0), SimTime{seconds(100).ns()},
                        seconds(50), milliamps(50.0),
                        SimTime{seconds(10).ns()}};
  EXPECT_DOUBLE_EQ(charge.current_at(SimTime{0}).value(), 0.0);
}

TEST(LoadProfile, CompositeSums) {
  auto a = std::make_shared<ConstantLoad>(milliamps(10.0));
  auto b = std::make_shared<ConstantLoad>(milliamps(20.0));
  CompositeLoad both{{a, b}};
  EXPECT_DOUBLE_EQ(util::as_milliamps(both.current_at(SimTime{0})), 30.0);
}

TEST(LoadProfile, CompositeRejectsNull) {
  EXPECT_THROW(CompositeLoad({nullptr}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ESP32
// ---------------------------------------------------------------------------

TEST(Esp32, ModeCurrentsOrdered) {
  Esp32Soc soc{"dev", {}};
  const auto t = SimTime{0};
  soc.set_mode(Esp32PowerMode::kDeepSleep);
  const double deep = soc.current_demand(t).value();
  soc.set_mode(Esp32PowerMode::kLightSleep);
  const double light = soc.current_demand(t).value();
  soc.set_mode(Esp32PowerMode::kModemSleep);
  const double modem = soc.current_demand(t).value();
  soc.set_mode(Esp32PowerMode::kActive);
  const double active = soc.current_demand(t).value();
  EXPECT_LT(deep, light);
  EXPECT_LT(light, modem);
  EXPECT_LT(modem, active);
}

TEST(Esp32, TxBurstAddsCurrentWhileActive) {
  Esp32Soc soc{"dev", {}};
  soc.set_mode(Esp32PowerMode::kActive);
  const double base = util::as_milliamps(soc.current_demand(SimTime{0}));
  soc.radio_tx_until(SimTime{milliseconds(10).ns()});
  const double bursting =
      util::as_milliamps(soc.current_demand(SimTime{milliseconds(5).ns()}));
  const double after =
      util::as_milliamps(soc.current_demand(SimTime{milliseconds(15).ns()}));
  EXPECT_NEAR(bursting - base, 120.0, 1e-9);
  EXPECT_DOUBLE_EQ(after, base);
}

TEST(Esp32, RadioBurstIgnoredInDeepSleep) {
  Esp32Soc soc{"dev", {}};
  soc.set_mode(Esp32PowerMode::kDeepSleep);
  soc.radio_tx_until(SimTime{seconds(1).ns()});
  EXPECT_NEAR(util::as_milliamps(soc.current_demand(SimTime{0})), 0.01, 1e-9);
}

TEST(Esp32, TxTakesPrecedenceOverRx) {
  Esp32Soc soc{"dev", {}};
  soc.set_mode(Esp32PowerMode::kActive);
  soc.radio_rx_until(SimTime{seconds(1).ns()});
  soc.radio_tx_until(SimTime{seconds(1).ns()});
  const double draw = util::as_milliamps(soc.current_demand(SimTime{0}));
  EXPECT_NEAR(draw, 45.0 + 120.0, 1e-9);
}

TEST(Esp32, AttachedLoadAdds) {
  Esp32Soc soc{"dev", {}};
  soc.set_mode(Esp32PowerMode::kActive);
  const double before = util::as_milliamps(soc.current_demand(SimTime{0}));
  soc.attach_load(std::make_shared<ConstantLoad>(milliamps(500.0)));
  const double after = util::as_milliamps(soc.current_demand(SimTime{0}));
  EXPECT_NEAR(after - before, 500.0, 1e-9);
}

TEST(Esp32, ModeNames) {
  EXPECT_STREQ(to_string(Esp32PowerMode::kActive), "active");
  EXPECT_STREQ(to_string(Esp32PowerMode::kDeepSleep), "deep-sleep");
}

}  // namespace
}  // namespace emon::hw
