// The unified metrics layer (obs/metrics.{hpp,cpp}, obs/export.{hpp,cpp})
// and its integration points:
//   * log-linear bucket scheme properties (containment, monotonicity, the
//     1/16 relative-width bound)
//   * differential quantile fuzz against a sorted-vector reference across
//     adversarial value ranges (sub-microsecond, hours, all-equal, bimodal,
//     log-uniform) with the |est - exact| <= exact/16 + 1 bound
//   * registry get-or-create identity, kind-mismatch errors, sharded
//     counter folds, snapshot determinism and finders
//   * runtime enable gating (histograms pause, counters stay live)
//   * multi-threaded record/merge parity: concurrent recording folds to the
//     same summary as sequential recording (and stays TSan-clean, with a
//     concurrent snapshot reader in the mix)
//   * LogConfig thread-safety and the log_messages{level} registry counter
//   * text/JSON exporters
//   * a live end-to-end scrape: a dashboard client publishes StatsRequest
//     on emon/metrics mid-run and gets back non-zero ingest/query/push
//     numbers from a running testbed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet.hpp"
#include "core/protocol.hpp"
#include "core/scenario.hpp"
#include "net/channel.hpp"
#include "net/mqtt.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace emon::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket scheme
// ---------------------------------------------------------------------------

TEST(Buckets, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(bucket_index(v), v);
    EXPECT_EQ(bucket_lower(bucket_index(v)), v);
    EXPECT_EQ(bucket_width(bucket_index(v)), 1u);
  }
}

TEST(Buckets, EveryValueLandsInsideItsBucket) {
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> values = {0, 1, 15, 16, 17, 31, 32, 33,
                                       1'000, 1'000'000, ~std::uint64_t{0}};
  for (int shift = 4; shift < 64; ++shift) {
    values.push_back(std::uint64_t{1} << shift);
    values.push_back((std::uint64_t{1} << shift) - 1);
    values.push_back((std::uint64_t{1} << shift) + 1);
    values.push_back(rng() >> (63 - shift));
  }
  for (const std::uint64_t v : values) {
    const std::size_t i = bucket_index(v);
    ASSERT_LT(i, kHistogramBuckets) << "v=" << v;
    EXPECT_GE(v, bucket_lower(i)) << "v=" << v;
    // lower + width can wrap at the very top octave; compare via subtraction.
    EXPECT_LT(v - bucket_lower(i), bucket_width(i)) << "v=" << v;
  }
}

TEST(Buckets, IndexIsMonotonicAndWidthBounded) {
  std::uint64_t prev_lower = 0;
  for (std::size_t i = 1; i < kHistogramBuckets; ++i) {
    EXPECT_GT(bucket_lower(i), prev_lower) << "i=" << i;
    prev_lower = bucket_lower(i);
    // Relative quantization error bound: width <= max(1, lower / 16).
    EXPECT_LE(bucket_width(i), std::max<std::uint64_t>(1, bucket_lower(i) / 16))
        << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Differential quantile fuzz (recording is compiled out under EMON_OBS_OFF)
// ---------------------------------------------------------------------------

#ifndef EMON_OBS_DISABLED

/// The registry's rank definition: rank = clamp(floor(q * count), 1, count),
/// exact answer = sorted[rank - 1].
std::uint64_t exact_quantile(std::vector<std::uint64_t> sorted, double q) {
  const auto count = static_cast<std::uint64_t>(sorted.size());
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  return sorted[rank - 1];
}

void check_quantiles(const std::vector<std::uint64_t>& values,
                     const char* label) {
  MetricsRegistry reg(4);
  Histogram h = reg.histogram("h");
  for (std::size_t i = 0; i < values.size(); ++i) {
    h.record(values[i], i);  // spread across slots; fold must not care
  }
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  const HistogramSummary s = h.summary();
  ASSERT_EQ(s.count, values.size()) << label;
  EXPECT_EQ(s.min, sorted.front()) << label;
  EXPECT_EQ(s.max, sorted.back()) << label;
  const struct {
    double q;
    std::uint64_t est;
  } cases[] = {{0.50, s.p50}, {0.95, s.p95}, {0.99, s.p99}};
  for (const auto& [q, est] : cases) {
    const std::uint64_t exact = exact_quantile(sorted, q);
    const std::uint64_t bound = exact / 16 + 1;
    const std::uint64_t err = est > exact ? est - exact : exact - est;
    EXPECT_LE(err, bound) << label << " q=" << q << " est=" << est
                          << " exact=" << exact;
  }
}

TEST(QuantileFuzz, SubMicrosecondRange) {
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::uint64_t> dist(0, 999);
  std::vector<std::uint64_t> values(5000);
  for (auto& v : values) v = dist(rng);
  check_quantiles(values, "sub-us");
}

TEST(QuantileFuzz, HoursRange) {
  std::mt19937_64 rng(2);
  // Around 1-10 hours in nanoseconds.
  std::uniform_int_distribution<std::uint64_t> dist(3'600'000'000'000ull,
                                                    36'000'000'000'000ull);
  std::vector<std::uint64_t> values(5000);
  for (auto& v : values) v = dist(rng);
  check_quantiles(values, "hours");
}

TEST(QuantileFuzz, AllEqual) {
  check_quantiles(std::vector<std::uint64_t>(1000, 123'456'789), "all-equal");
}

TEST(QuantileFuzz, TwoPointBimodal) {
  // 90% fast / 10% slow, five orders of magnitude apart: p50 must sit on
  // the fast mode, p99 on the slow one.
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 900; ++i) values.push_back(250);
  for (int i = 0; i < 100; ++i) values.push_back(25'000'000);
  check_quantiles(values, "bimodal");
  MetricsRegistry reg(1);
  Histogram h = reg.histogram("h");
  for (const auto v : values) h.record(v);
  const HistogramSummary s = h.summary();
  EXPECT_LE(s.p50, 250u + 250u / 16 + 1);  // sits on the fast mode
  EXPECT_GT(s.p99, 20'000'000u);           // sits on the slow mode
}

TEST(QuantileFuzz, LogUniformSweep) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> exp_dist(0.0, 40.0);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> values(1000);
    for (auto& v : values) {
      v = static_cast<std::uint64_t>(std::exp2(exp_dist(rng)));
    }
    check_quantiles(values, "log-uniform");
  }
}

#endif  // EMON_OBS_DISABLED

TEST(Histogram, EmptySummaryIsZero) {
  MetricsRegistry reg(1);
  EXPECT_EQ(reg.histogram("h").summary(), HistogramSummary{});
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry reg(2);
  Counter a = reg.counter("c");
  Counter b = reg.counter("c");
  a.add(3);
  b.add(4, 1);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry reg(1);
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("x"), std::logic_error);
  (void)reg.histogram("y");
  EXPECT_THROW((void)reg.counter("y"), std::logic_error);
}

TEST(Registry, CounterSlotsFoldAndSlotIndexWraps) {
  MetricsRegistry reg(4);
  Counter c = reg.counter("c");
  for (std::size_t slot = 0; slot < 64; ++slot) {
    c.inc(slot);  // slot & mask — any slot index is safe
  }
  EXPECT_EQ(c.value(), 64u);
}

TEST(Registry, DefaultHandlesAreNoOps) {
  const Counter c;
  const Gauge g;
  const Histogram h;
  c.inc();
  g.set(5);
  h.record(1);
  EXPECT_FALSE(c.bound());
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.summary().count, 0u);
}

TEST(Registry, SnapshotIsSortedAndFindable) {
  MetricsRegistry reg(2);
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(-7);
  reg.histogram("lat").record(100);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_NE(snap.counter("zeta"), nullptr);
  EXPECT_EQ(*snap.counter("zeta"), 1u);
  ASSERT_NE(snap.gauge("mid"), nullptr);
  EXPECT_EQ(*snap.gauge("mid"), -7);
  ASSERT_NE(snap.histogram("lat"), nullptr);
#ifndef EMON_OBS_DISABLED
  EXPECT_EQ(snap.histogram("lat")->count, 1u);
#endif
  EXPECT_EQ(snap.counter("missing"), nullptr);
  EXPECT_EQ(snap.gauge("missing"), nullptr);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

#ifndef EMON_OBS_DISABLED
TEST(Registry, RuntimeDisablePausesHistogramsNotCounters) {
  MetricsRegistry reg(1);
  Counter c = reg.counter("c");
  Histogram h = reg.histogram("h");
  set_enabled(false);
  c.inc();
  h.record(42);
  set_enabled(true);
  EXPECT_EQ(c.value(), 1u);        // counters stay live
  EXPECT_EQ(h.summary().count, 0u);  // histograms pause
  h.record(42);
  EXPECT_EQ(h.summary().count, 1u);
}

TEST(Timers, ScopedTimerRecordsOneSample) {
  MetricsRegistry reg(1);
  Histogram h = reg.histogram("t");
  { const ScopedTimer t(h); }
  EXPECT_EQ(h.summary().count, 1u);
}

TEST(Timers, StopWatchNeverArmsWhileDisabled) {
  set_enabled(false);
  StopWatch w;
  w.start();
  EXPECT_FALSE(w.armed());
  EXPECT_EQ(w.stop(), 0u);
  set_enabled(true);
}
#endif  // EMON_OBS_DISABLED

// ---------------------------------------------------------------------------
// Multi-threaded record/merge parity (TSan-covered)
// ---------------------------------------------------------------------------

TEST(Threads, ConcurrentRecordingFoldsLikeSequential) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20'000;

  // Deterministic per-thread value streams.
  std::vector<std::vector<std::uint64_t>> streams(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    std::mt19937_64 rng(1000 + t);
    streams[t].resize(kPerThread);
    for (auto& v : streams[t]) v = rng() >> (rng() % 50);
  }

  MetricsRegistry concurrent(kThreads);
  Histogram ch = concurrent.histogram("h");
  Counter cc = concurrent.counter("c");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (const std::uint64_t v : streams[t]) {
        ch.record(v, t);
        cc.add(1, t);
      }
    });
  }
  // Concurrent snapshot reader: values are racy-by-design torn across
  // instruments but every individual read is a relaxed atomic — TSan must
  // stay quiet.
  std::thread reader([&] {
    for (int i = 0; i < 50; ++i) {
      (void)concurrent.snapshot();
    }
  });
  for (auto& w : workers) w.join();
  reader.join();

  MetricsRegistry sequential(kThreads);
  Histogram sh = sequential.histogram("h");
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (const std::uint64_t v : streams[t]) sh.record(v, t);
  }

  EXPECT_EQ(cc.value(), kThreads * kPerThread);
#ifndef EMON_OBS_DISABLED
  EXPECT_EQ(ch.summary(), sh.summary());  // bit-identical fold
#endif
}

TEST(Threads, ConcurrentGetOrCreateYieldsOneInstrument) {
  MetricsRegistry reg(4);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared").add(1, static_cast<std::size_t>(t));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("shared").value(), 800u);
}

// ---------------------------------------------------------------------------
// Logging: thread-safety + registry counter
// ---------------------------------------------------------------------------

TEST(Log, EmitBumpsLeveledRegistryCounter) {
  const Counter warns = global_registry().counter("log_messages{level=\"warn\"}");
  const std::uint64_t before = warns.value();
  util::LogConfig::set_sink(
      [](util::LogLevel, std::string_view, std::string_view) {});
  const util::Logger log("test-obs");
  log.warn("counted");
  util::LogConfig::set_sink(nullptr);
  EXPECT_EQ(warns.value(), before + 1);
}

TEST(Log, ConcurrentLevelSinkAndEmitAreSafe) {
  std::atomic<int> delivered{0};
  util::LogConfig::set_sink(
      [&delivered](util::LogLevel, std::string_view, std::string_view) {
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([t] {
      const util::Logger log("worker-" + std::to_string(t));
      for (int i = 0; i < 500; ++i) {
        log.error("message ", i);
      }
    });
  }
  std::thread toggler([] {
    for (int i = 0; i < 200; ++i) {
      util::LogConfig::set_level(i % 2 == 0 ? util::LogLevel::kError
                                            : util::LogLevel::kOff);
    }
    util::LogConfig::set_level(util::LogLevel::kWarn);
  });
  for (auto& w : workers) w.join();
  toggler.join();
  util::LogConfig::set_sink(nullptr);
  util::LogConfig::set_level(util::LogLevel::kWarn);
  EXPECT_GT(delivered.load(), 0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Export, PrometheusTextShapes) {
  MetricsRegistry reg(1);
  reg.counter("frames_total").add(3);
  reg.counter("log_messages{level=\"warn\"}").add(2);
  reg.gauge("lag_ns").set(-9);
  reg.histogram("latency_ns").record(100);

  std::ostringstream out;
  write_prometheus(reg.snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("frames_total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("log_messages{level=\"warn\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lag_ns -9"), std::string::npos) << text;
#ifndef EMON_OBS_DISABLED
  EXPECT_NE(text.find("latency_ns_count 1"), std::string::npos) << text;
#endif
  EXPECT_NE(text.find("latency_ns{quantile=\"0.5\"}"), std::string::npos)
      << text;
}

TEST(Export, PrometheusMergesQuantileIntoExistingLabels) {
  MetricsRegistry reg(1);
  reg.histogram("query_ns{kind=\"aggregate\"}").record(50);
  std::ostringstream out;
  write_prometheus(reg.snapshot(), out);
  const std::string text = out.str();
#ifndef EMON_OBS_DISABLED
  EXPECT_NE(text.find("query_ns_count{kind=\"aggregate\"} 1"),
            std::string::npos)
      << text;
#endif
  EXPECT_NE(text.find("query_ns{kind=\"aggregate\",quantile=\"0.99\"}"),
            std::string::npos)
      << text;
}

TEST(Export, JsonIsWellFormedEnoughToFindSections) {
  MetricsRegistry reg(1);
  reg.counter("c").add(1);
  reg.gauge("g").set(2);
  reg.histogram("h").record(3);
  std::ostringstream out;
  write_json(reg.snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"counters\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"gauges\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"histograms\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"c\":1"), std::string::npos) << text;
  EXPECT_NE(text.find("\"p99\""), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Live end-to-end scrape (the acceptance gate: non-zero ingest/query/push
// numbers from a mid-run StatsRequest)
// ---------------------------------------------------------------------------

#ifndef EMON_OBS_DISABLED
TEST(LiveScrape, MidRunStatsRequestReturnsHotPipelineHistograms) {
  using core::protocol::seal;
  namespace protocol = core::protocol;

  core::Testbed bed(core::metro_fleet(2, 16, /*seed=*/7));
  bed.start();
  bed.run_for(sim::seconds(6));

  // A dashboard client on the aggregator's kernel (shards == 1 here).
  net::MqttClient dash(bed.kernel(), "dash-obs");
  const auto channel = [&](std::uint64_t seed) {
    net::ChannelParams params;
    params.base_latency = sim::milliseconds(2);
    params.jitter = sim::Duration{0};
    return std::make_shared<net::Channel>(bed.kernel(), params,
                                          util::Rng{seed});
  };
  dash.connect(bed.aggregator(0).broker(), channel(11), channel(12),
               [](bool) {});
  bed.run_for(sim::milliseconds(50));

  // Cold query activity for the scrape to observe: verification prefers
  // the maintained hot rollup read, so drive one on-demand fleet query —
  // the path dashboards and billing take.
  store::QuerySpec everything;
  everything.t0_ns = 0;
  everything.t1_ns = bed.kernel().now().ns();
  (void)bed.aggregator(0).query_engine().aggregate(everything);

  std::vector<core::StatsResponse> responses;
  dash.subscribe(protocol::topic_push("dash-obs"),
                 [&responses](const net::MqttMessage& m) {
                   auto decoded = protocol::decode_any(m.payload);
                   ASSERT_TRUE(decoded.ok());
                   if (const auto* resp =
                           std::get_if<core::StatsResponse>(&decoded.value())) {
                     responses.push_back(*resp);
                   }
                 });
  dash.publish(std::string(protocol::kTopicMetrics),
               seal(core::StatsRequest{"dash-obs", 42}), 1);
  bed.run_for(sim::seconds(1));

  ASSERT_EQ(responses.size(), 1u);
  const core::StatsResponse& resp = responses.front();
  EXPECT_EQ(resp.request_id, 42u);
  EXPECT_EQ(resp.aggregator_id, bed.aggregator(0).id());
  EXPECT_GT(resp.sim_now_ns, 0);

  const auto counter = [&resp](std::string_view name) -> std::uint64_t {
    for (const auto& c : resp.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  const auto histogram_count = [&resp](std::string_view name) -> std::uint64_t {
    for (const auto& h : resp.histograms) {
      if (h.name == name) return h.count;
    }
    return 0;
  };

  // Ingest path.
  EXPECT_GT(counter("tsdb_records_ingested"), 0u);
  EXPECT_GT(counter("agg_reports_total"), 0u);
  EXPECT_GT(histogram_count("agg_report_append_ns"), 0u);
  EXPECT_GT(histogram_count("agg_ingest_lag_ns"), 0u);
  EXPECT_GT(histogram_count("mqtt_dispatch_ns"), 0u);
  // Query path (verification windows ran during the 6 s warm-up).
  std::uint64_t query_samples = 0;
  for (const auto& h : resp.histograms) {
    if (h.name.rfind("query_ns{", 0) == 0) query_samples += h.count;
  }
  EXPECT_GT(query_samples, 0u);
  // Push path: windows closed and pumped (verify interval 1 s, lateness
  // 2 s, 6 s of traffic).
  EXPECT_GT(histogram_count("sub_pump_ns"), 0u);
  EXPECT_GT(counter("rollup_windows_closed"), 0u);
  EXPECT_GT(histogram_count("e2e_report_to_push_ns"), 0u);

  // The wire snapshot matches a direct one taken at the same sim state on
  // the deterministic counters.
  const MetricsSnapshot direct = bed.aggregator(0).metrics().snapshot();
  ASSERT_NE(direct.counter("tsdb_records_ingested"), nullptr);
  EXPECT_GE(*direct.counter("tsdb_records_ingested"),
            counter("tsdb_records_ingested"));
}
#endif  // EMON_OBS_DISABLED

}  // namespace
}  // namespace emon::obs
