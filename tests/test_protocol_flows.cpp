// Integration tests of the registration / reporting / mobility protocol
// (Figure 3) running on the fully wired testbed: device firmware +
// aggregator + MQTT + Wi-Fi + grid + chain, all on the event kernel.

#include <gtest/gtest.h>

#include "core/mobility.hpp"
#include "core/scenario.hpp"

namespace emon::core {
namespace {

using sim::milliseconds;
using sim::seconds;
using sim::SimTime;

ScenarioSpec two_by_two(std::uint64_t seed = 42) {
  return paper_figure4(seed);
}

// ---------------------------------------------------------------------------
// Sequence 1: membership registration
// ---------------------------------------------------------------------------

TEST(Protocol, DevicesRegisterAtHome) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(10));
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    auto& dev = bed.device(i);
    EXPECT_EQ(dev.state(), DeviceState::kReporting) << dev.id();
    EXPECT_EQ(dev.membership(), MembershipKind::kHome) << dev.id();
    EXPECT_EQ(dev.master_addr(),
              bed.aggregator(bed.home_of(i)).id())
        << dev.id();
  }
  EXPECT_EQ(bed.aggregator(0).members().size(), 2u);
  EXPECT_EQ(bed.aggregator(1).members().size(), 2u);
  EXPECT_EQ(bed.aggregator(0).stats().registrations_home, 2u);
}

TEST(Protocol, InitialHandshakeWithinPaperBand) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(10));
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    const auto& handshakes = bed.device(i).handshakes();
    ASSERT_EQ(handshakes.size(), 1u);
    const double t = handshakes[0].duration().to_seconds();
    EXPECT_GE(t, 5.0) << bed.device(i).id();
    EXPECT_LE(t, 7.0) << bed.device(i).id();
  }
}

TEST(Protocol, DistinctTdmaSlotsPerNetwork) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(10));
  for (std::size_t n = 0; n < 2; ++n) {
    const auto members = bed.aggregator(n).members().all();
    ASSERT_EQ(members.size(), 2u);
    EXPECT_NE(members[0]->slot, members[1]->slot);
  }
}

// ---------------------------------------------------------------------------
// Steady-state reporting
// ---------------------------------------------------------------------------

TEST(Protocol, ReportsFlowAtTmeasure) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(30));
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    const auto& stats = bed.device(i).stats();
    // ~300 samples in 30 s at 10 Hz; the first ~60 buffered during the
    // handshake, the rest reported live.
    EXPECT_GT(stats.samples, 280u);
    EXPECT_GT(stats.reports_acked, 200u);
    EXPECT_LE(stats.reports_acked, stats.reports_sent);
    EXPECT_LE(stats.reports_sent - stats.reports_acked, 2u);  // in flight
  }
}

TEST(Protocol, HandshakeBacklogIsFlushed) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(30));
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    // Everything buffered during the handshake must reach the aggregator.
    EXPECT_EQ(bed.device(i).local_store().size(), 0u) << bed.device(i).id();
  }
  // Aggregator saw those buffered records flagged stored_offline.
  EXPECT_GT(bed.aggregator(0).stats().offline_records_accepted, 50u);
}

TEST(Protocol, NoRecordLossInSteadyState) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(30));
  for (std::size_t n = 0; n < 2; ++n) {
    std::uint64_t sampled = 0;
    for (std::size_t d = 0; d < 2; ++d) {
      sampled += bed.device(n * 2 + d).stats().samples;
    }
    const auto& agg = bed.aggregator(n).stats();
    // Records at the aggregator + any still in flight/buffered == samples.
    std::uint64_t buffered = 0;
    for (std::size_t d = 0; d < 2; ++d) {
      buffered += bed.device(n * 2 + d).local_store().size();
    }
    EXPECT_LE(agg.records_accepted, sampled);
    EXPECT_GE(agg.records_accepted + buffered + 4 /*in flight*/, sampled);
  }
}

TEST(Protocol, VerificationWindowsArePredominantlyClean) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(60));
  for (std::size_t n = 0; n < 2; ++n) {
    const auto& history = bed.aggregator(n).verification_history();
    ASSERT_GT(history.size(), 50u);
    std::size_t anomalous = 0;
    for (const auto& v : history) {
      anomalous += v.anomalous ? 1 : 0;
    }
    // Only the pre-registration warm-up may flag.
    EXPECT_LE(anomalous, 8u) << bed.aggregator(n).id();
    // Steady state (second half) must be entirely clean.
    for (std::size_t i = history.size() / 2; i < history.size(); ++i) {
      EXPECT_FALSE(history[i].anomalous) << "window " << i;
    }
  }
}

TEST(Protocol, BlocksAccumulateAndChainValidates) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(30));
  EXPECT_GT(bed.chain().ledger().size(), 5u);
  EXPECT_GT(bed.chain().ledger().record_count(), 800u);
  EXPECT_TRUE(bed.chain().validate().ok);
}

TEST(Protocol, ReplicasSyncAcrossBackhaul) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(30));
  // Each aggregator's replica mirrors the shared chain (modulo the last
  // in-flight block).
  const auto& shared = bed.chain().ledger();
  for (std::size_t n = 0; n < 2; ++n) {
    const auto& replica = bed.aggregator(n).replica();
    // Both writers produce a block on the same timer tick, so up to two
    // broadcasts can be in flight at the observation instant.
    EXPECT_GE(replica.size() + 2, shared.size());
    EXPECT_TRUE(replica.validate().ok);
    for (std::size_t i = 0; i < replica.size(); ++i) {
      EXPECT_EQ(replica.at(i).hash, shared.at(i).hash) << "block " << i;
    }
  }
}

TEST(Protocol, TimeSyncKeepsClocksAligned) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(120));
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    EXPECT_LT(std::fabs(bed.device(i).rtc().error().to_seconds()), 0.01)
        << bed.device(i).id();
  }
}

// ---------------------------------------------------------------------------
// Sequence 2: mobility and temporary membership
// ---------------------------------------------------------------------------

struct RoamingFixture : ::testing::Test {
  Testbed bed{two_by_two(7)};

  void roam_dev0_to_wan2(sim::Duration transit = seconds(15)) {
    bed.start();
    bed.run_for(seconds(20));  // settle at home
    auto& dev = bed.device(0);
    ASSERT_EQ(dev.state(), DeviceState::kReporting);
    dev.move_to(bed.network_name(1),
                net::Position{bed.network_position(1).x + 2.0, 0.0}, transit);
  }
};

TEST_F(RoamingFixture, TemporaryMembershipEstablished) {
  roam_dev0_to_wan2();
  bed.run_for(seconds(40));
  auto& dev = bed.device(0);
  EXPECT_EQ(dev.state(), DeviceState::kReporting);
  EXPECT_EQ(dev.membership(), MembershipKind::kTemporary);
  EXPECT_EQ(dev.master_addr(), "agg-1");  // home retained
  EXPECT_EQ(dev.plugged_network(), "wan-2");
  const MemberEntry* temp = bed.aggregator(1).members().find("dev-1");
  ASSERT_NE(temp, nullptr);
  EXPECT_EQ(temp->kind, MembershipKind::kTemporary);
  EXPECT_EQ(temp->master_addr, "agg-1");
  // Home membership retained at all times (§II-C).
  const MemberEntry* home = bed.aggregator(0).members().find("dev-1");
  ASSERT_NE(home, nullptr);
  EXPECT_EQ(home->kind, MembershipKind::kHome);
}

TEST_F(RoamingFixture, NackTriggersTemporaryRegistration) {
  roam_dev0_to_wan2();
  bed.run_for(seconds(40));
  EXPECT_GE(bed.device(0).stats().nacks_received, 1u);
  EXPECT_EQ(bed.aggregator(1).stats().registrations_temporary, 1u);
  EXPECT_EQ(bed.aggregator(0).stats().verify_queries_answered, 1u);
}

TEST_F(RoamingFixture, RoamHandshakeInPaperBand) {
  roam_dev0_to_wan2();
  bed.run_for(seconds(40));
  const auto& handshakes = bed.device(0).handshakes();
  ASSERT_EQ(handshakes.size(), 2u);  // home join + roam
  const auto& roam = handshakes[1];
  EXPECT_EQ(roam.membership, MembershipKind::kTemporary);
  EXPECT_GE(roam.duration().to_seconds(), 5.0);
  EXPECT_LE(roam.duration().to_seconds(), 7.0);
}

TEST_F(RoamingFixture, RoamedRecordsForwardedToMaster) {
  roam_dev0_to_wan2();
  bed.run_for(seconds(60));
  EXPECT_GT(bed.aggregator(1).stats().roam_batches_forwarded, 0u);
  EXPECT_GT(bed.aggregator(0).stats().roam_records_received, 100u);
  // Master knows where its device roams.
  const MemberEntry* home = bed.aggregator(0).members().find("dev-1");
  ASSERT_NE(home, nullptr);
  EXPECT_EQ(home->roaming_host, "agg-2");
}

TEST_F(RoamingFixture, EnergyConservedAcrossRoam) {
  roam_dev0_to_wan2();
  bed.run_for(seconds(60));
  auto& dev = bed.device(0);
  const auto invoice = bed.aggregator(0).billing().invoice_for("dev-1");
  const double metered = util::as_milliwatt_hours(dev.meter().total_energy());
  // Everything metered ends up billed at home (within in-flight slack).
  EXPECT_NEAR(invoice.total_energy_mwh, metered, 0.05 * metered + 0.05);
  // Both networks appear on the bill, wan-2 as roamed.
  ASSERT_EQ(invoice.lines.size(), 2u);
  EXPECT_FALSE(invoice.lines[0].roamed);  // wan-1
  EXPECT_TRUE(invoice.lines[1].roamed);   // wan-2
}

TEST_F(RoamingFixture, NoConsumptionDuringTransit) {
  roam_dev0_to_wan2(seconds(15));
  // In transit the device is unplugged: zero samples, zero state.
  bed.run_for(seconds(5));
  EXPECT_EQ(bed.device(0).state(), DeviceState::kUnplugged);
  const auto before = bed.device(0).stats().samples;
  bed.run_for(seconds(5));
  EXPECT_EQ(bed.device(0).stats().samples, before);  // no sampling unplugged
}

TEST_F(RoamingFixture, ReturnHomeWithoutReregistration) {
  roam_dev0_to_wan2();
  bed.run_for(seconds(40));
  auto& dev = bed.device(0);
  const auto regs_before = bed.aggregator(0).stats().registrations_home;
  // Ride back home.
  dev.move_to(bed.network_name(0),
              net::Position{bed.network_position(0).x + 1.5, 0.0},
              seconds(10));
  bed.run_for(seconds(30));
  EXPECT_EQ(dev.state(), DeviceState::kReporting);
  EXPECT_EQ(dev.membership(), MembershipKind::kHome);
  // "A stationary device undergoes a single registration process in its
  // lifetime" — home rejoin rides the Ack path, not a new registration.
  EXPECT_EQ(bed.aggregator(0).stats().registrations_home, regs_before);
}

TEST_F(RoamingFixture, TemporaryMembershipExpiresAfterDeparture) {
  roam_dev0_to_wan2();
  bed.run_for(seconds(40));
  ASSERT_NE(bed.aggregator(1).members().find("dev-1"), nullptr);
  // Leave wan-2 and stay off-grid past the expiry timeout.
  bed.device(0).unplug();
  bed.run_for(seconds(70));  // > temp_member_timeout (30 s) + sweep period
  EXPECT_EQ(bed.aggregator(1).members().find("dev-1"), nullptr);
  EXPECT_GE(bed.aggregator(1).stats().memberships_expired, 1u);
  // Home membership still retained.
  EXPECT_NE(bed.aggregator(0).members().find("dev-1"), nullptr);
}

TEST_F(RoamingFixture, MobilityPlanRunsSteps) {
  bed.start();
  bed.run_for(seconds(15));
  MobilityPlan plan{
      {SimTime{seconds(20).ns()}, bed.network_name(1),
       net::Position{bed.network_position(1).x + 2.0, 0.0}, seconds(5)},
      {SimTime{seconds(60).ns()}, bed.network_name(0),
       net::Position{bed.network_position(0).x + 1.5, 0.0}, seconds(5)},
  };
  schedule_plan(bed.kernel(), bed.device(0), plan);
  bed.run_for(seconds(45));  // t=60: departed back
  bed.run_for(seconds(30));
  EXPECT_EQ(bed.device(0).plugged_network(), "wan-1");
  EXPECT_EQ(bed.device(0).state(), DeviceState::kReporting);
  EXPECT_EQ(bed.device(0).handshakes().size(), 3u);
}

TEST(ProtocolEdge, MobilityPlanMustBeSorted) {
  Testbed bed{two_by_two()};
  MobilityPlan bad{
      {SimTime{seconds(20).ns()}, "wan-2", {}, seconds(5)},
      {SimTime{seconds(10).ns()}, "wan-1", {}, seconds(5)},
  };
  EXPECT_THROW(schedule_plan(bed.kernel(), bed.device(0), bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sequence 3: membership removal / ownership transfer
// ---------------------------------------------------------------------------

TEST(Protocol, RemoveMembershipNotifiesDevice) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(15));
  ASSERT_EQ(bed.device(0).state(), DeviceState::kReporting);
  const auto regs_before = bed.aggregator(0).stats().registrations_home;
  bed.aggregator(0).remove_membership("dev-1", "device reported lost");
  // The removal notice reaches the device, which re-registers afresh
  // (sequence 3 of Figure 3 ends with an updated membership).
  bed.run_for(seconds(15));
  EXPECT_EQ(bed.device(0).state(), DeviceState::kReporting);
  EXPECT_EQ(bed.aggregator(0).stats().registrations_home, regs_before + 1);
  const MemberEntry* entry = bed.aggregator(0).members().find("dev-1");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MembershipKind::kHome);
}

TEST(Protocol, OwnershipTransferPromotesTemporary) {
  Testbed bed{two_by_two(7)};
  bed.start();
  bed.run_for(seconds(20));
  auto& dev = bed.device(0);
  dev.move_to(bed.network_name(1),
              net::Position{bed.network_position(1).x + 2.0, 0.0},
              seconds(10));
  bed.run_for(seconds(30));
  ASSERT_EQ(dev.membership(), MembershipKind::kTemporary);
  // Owner sells the scooter to someone in wan-2: transfer master to agg-2.
  bed.aggregator(0).transfer_membership("dev-1", "agg-2");
  bed.run_for(seconds(10));
  EXPECT_EQ(bed.aggregator(0).members().find("dev-1"), nullptr);
  const MemberEntry* entry = bed.aggregator(1).members().find("dev-1");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MembershipKind::kHome);
}

// ---------------------------------------------------------------------------
// Tamper detection (extension: the "ground truth problem")
// ---------------------------------------------------------------------------

TEST(Protocol, UnderReportingDeviceFlaggedAndIdentified) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(30));  // build honest profiles
  bed.device(0).set_tamper_factor(0.5);  // report half the real draw
  bed.run_for(seconds(20));
  const auto& history = bed.aggregator(0).verification_history();
  std::size_t flagged = 0;
  std::size_t suspect_hits = 0;
  // Inspect the tampered era only (last 20 windows).
  for (std::size_t i = history.size() - 18; i < history.size(); ++i) {
    if (history[i].anomalous) {
      ++flagged;
      suspect_hits += history[i].suspect == "dev-1" ? 1 : 0;
    }
  }
  EXPECT_GT(flagged, 10u);
  // The deviation score must point at the right device most of the time.
  EXPECT_GT(suspect_hits * 2, flagged);
}

TEST(Protocol, HonestAgainAfterTamperEnds) {
  Testbed bed{two_by_two()};
  bed.start();
  bed.run_for(seconds(30));
  bed.device(0).set_tamper_factor(0.5);
  bed.run_for(seconds(10));
  bed.device(0).set_tamper_factor(1.0);
  bed.run_for(seconds(20));
  const auto& history = bed.aggregator(0).verification_history();
  for (std::size_t i = history.size() - 10; i < history.size(); ++i) {
    EXPECT_FALSE(history[i].anomalous) << "window " << i;
  }
}

// ---------------------------------------------------------------------------
// Capacity limits
// ---------------------------------------------------------------------------

TEST(Protocol, TdmaCapacityBoundsMembership) {
  ScenarioSpec spec =
      FleetBuilder{}.name("tdma_capacity").networks(1, 6).seed(5).spec();
  // Only 4 slots available (auto_size_tdma stays off: under-provisioning
  // is the point).
  spec.sys.aggregator.tdma.superframe = milliseconds(100);
  spec.sys.aggregator.tdma.slot_width = milliseconds(25);
  Testbed bed{std::move(spec)};
  bed.start();
  bed.run_for(seconds(30));
  EXPECT_EQ(bed.aggregator(0).members().size(), 4u);
  EXPECT_GT(bed.aggregator(0).stats().registrations_rejected, 0u);
  std::size_t reporting = 0;
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    reporting += bed.device(i).state() == DeviceState::kReporting ? 1 : 0;
  }
  EXPECT_EQ(reporting, 4u);
}

}  // namespace
}  // namespace emon::core
