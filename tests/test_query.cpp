// The shard-parallel query engine (store/query_engine.{hpp,cpp}): bit
// parity of workers=N with the sequential workers=1 path across every fleet
// query type, fleet merges against naive per-device references, device
// subsets and per-device billing-scope overrides, pool reuse, per-shard
// query-counter folding, store-backed billing through fleet queries, and a
// query/ingest interleaving differential fuzz over randomized ingest orders
// including out-of-order roamed batches.
//
// Equality here is exact (==, including doubles): the engine's determinism
// rule promises bit-identical results for any worker count.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/billing.hpp"
#include "core/records.hpp"
#include "store/query_engine.hpp"
#include "store/tsdb.hpp"
#include "util/rng.hpp"

namespace emon::store {
namespace {

using core::ConsumptionRecord;
using core::MembershipKind;

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

/// One device's jittered 10 Hz stream; a slice in the middle carries a
/// foreign network (roamed-era records).
std::vector<ConsumptionRecord> device_stream(const core::DeviceId& id,
                                             std::size_t n, std::uint64_t seed,
                                             const core::NetworkId& home,
                                             const core::NetworkId& visited,
                                             std::int64_t t0_ns = 0) {
  util::Rng rng{seed};
  std::vector<ConsumptionRecord> out;
  out.reserve(n);
  std::int64_t t = t0_ns;
  for (std::size_t i = 0; i < n; ++i) {
    t += 100'000'000 + static_cast<std::int64_t>(rng.uniform(-50e3, 50e3));
    ConsumptionRecord r;
    r.device_id = id;
    r.sequence = i + 1;
    r.timestamp_ns = t;
    r.interval_ns = 100'000'000;
    r.current_ma = 180.0 + 0.04 * static_cast<double>(i) +
                   rng.uniform(-3.0, 3.0);
    r.bus_voltage_mv = 5000.0 + rng.uniform(-8.0, 8.0);
    r.energy_mwh = r.current_ma * 5.0 * (0.1 / 3600.0);
    const bool roamed = i >= n / 3 && i < n / 2;
    r.network = roamed ? visited : home;
    r.membership = roamed ? MembershipKind::kTemporary : MembershipKind::kHome;
    r.stored_offline = i % 4 == 0;
    out.push_back(std::move(r));
  }
  return out;
}

/// A fleet of per-device streams, ingested with shard-mixing interleave and
/// each device's roamed-era slice re-ordered to arrive *after* its later
/// live records (the offline-flush / roam-forward arrival pattern).
struct FleetWorkload {
  std::vector<core::DeviceId> devices;
  std::vector<ConsumptionRecord> arrival_order;
  std::int64_t t_min_ns = 0;
  std::int64_t t_max_ns = 0;
};

FleetWorkload make_fleet(std::size_t devices, std::size_t per_device,
                         std::size_t networks, std::uint64_t seed) {
  FleetWorkload fleet;
  std::vector<std::vector<ConsumptionRecord>> streams;
  for (std::size_t d = 0; d < devices; ++d) {
    const core::DeviceId id = "dev-" + std::to_string(d + 1);
    const core::NetworkId home = "wan-" + std::to_string(d % networks);
    const core::NetworkId visited =
        "wan-" + std::to_string((d + 1) % networks);
    auto stream = device_stream(id, per_device, seed + d, home, visited,
                                static_cast<std::int64_t>(d) * 7'000'000);
    fleet.devices.push_back(id);
    // Move the roamed-era slice to the end of the device's arrival order:
    // those records reach the home aggregator late, via roam_records.
    std::vector<ConsumptionRecord> arrival;
    std::vector<ConsumptionRecord> roamed;
    for (auto& r : stream) {
      (r.membership == MembershipKind::kTemporary ? roamed : arrival)
          .push_back(std::move(r));
    }
    arrival.insert(arrival.end(), std::make_move_iterator(roamed.begin()),
                   std::make_move_iterator(roamed.end()));
    streams.push_back(std::move(arrival));
  }
  // Round-robin interleave across devices so every shard ingests mixed.
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (auto& stream : streams) {
      if (i < stream.size()) {
        fleet.arrival_order.push_back(std::move(stream[i]));
        any = true;
      }
    }
    if (!any) {
      break;
    }
  }
  fleet.t_min_ns = INT64_MAX;
  fleet.t_max_ns = INT64_MIN;
  for (const auto& r : fleet.arrival_order) {
    fleet.t_min_ns = std::min(fleet.t_min_ns, r.timestamp_ns);
    fleet.t_max_ns = std::max(fleet.t_max_ns, r.timestamp_ns);
  }
  return fleet;
}

void ingest_all(Tsdb& db, const std::vector<ConsumptionRecord>& records) {
  for (const auto& r : records) {
    db.ingest(r);
  }
}

// ---------------------------------------------------------------------------
// Exact-equality helpers (doubles compared with ==; see file comment)
// ---------------------------------------------------------------------------

bool operator==(const DeviceAggregate& a, const DeviceAggregate& b) {
  return a.count == b.count && a.t_min_ns == b.t_min_ns &&
         a.t_max_ns == b.t_max_ns && a.min_current_ma == b.min_current_ma &&
         a.max_current_ma == b.max_current_ma &&
         a.avg_current_ma == b.avg_current_ma &&
         a.sum_energy_mwh == b.sum_energy_mwh;
}

bool operator==(const WindowAggregate& a, const WindowAggregate& b) {
  return a.start_ns == b.start_ns && a.count == b.count &&
         a.avg_current_ma == b.avg_current_ma &&
         a.max_current_ma == b.max_current_ma &&
         a.sum_energy_mwh == b.sum_energy_mwh;
}

bool stats_equal(const util::RunningStats& a, const util::RunningStats& b) {
  if (a.count() != b.count()) {
    return false;
  }
  if (a.empty()) {
    return true;
  }
  return a.mean() == b.mean() && a.min() == b.min() && a.max() == b.max() &&
         a.variance() == b.variance();
}

bool usage_equal(const std::map<core::NetworkId, NetworkUsage>& a,
                 const std::map<core::NetworkId, NetworkUsage>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (auto ia = a.begin(), ib = b.begin(); ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first || ia->second.records != ib->second.records ||
        ia->second.energy_mwh != ib->second.energy_mwh) {
      return false;
    }
  }
  return true;
}

/// Runs every query type on both engines and asserts exact equality.
void expect_engines_agree(const QueryEngine& a, const QueryEngine& b,
                          const QuerySpec& spec, const std::string& label) {
  // aggregate
  const FleetAggregate agg_a = a.aggregate(spec);
  const FleetAggregate agg_b = b.aggregate(spec);
  ASSERT_EQ(agg_a.per_device.size(), agg_b.per_device.size()) << label;
  for (std::size_t i = 0; i < agg_a.per_device.size(); ++i) {
    EXPECT_EQ(agg_a.per_device[i].first, agg_b.per_device[i].first) << label;
    EXPECT_TRUE(agg_a.per_device[i].second == agg_b.per_device[i].second)
        << label << " device " << agg_a.per_device[i].first;
  }
  EXPECT_TRUE(agg_a.merged == agg_b.merged) << label;
  // current_stats
  const FleetStats st_a = a.current_stats(spec);
  const FleetStats st_b = b.current_stats(spec);
  ASSERT_EQ(st_a.per_device.size(), st_b.per_device.size()) << label;
  for (std::size_t i = 0; i < st_a.per_device.size(); ++i) {
    EXPECT_EQ(st_a.per_device[i].first, st_b.per_device[i].first) << label;
    EXPECT_TRUE(stats_equal(st_a.per_device[i].second, st_b.per_device[i].second))
        << label << " device " << st_a.per_device[i].first;
  }
  EXPECT_TRUE(stats_equal(st_a.merged, st_b.merged)) << label;
  // scan
  const FleetScan sc_a = a.scan(spec);
  const FleetScan sc_b = b.scan(spec);
  ASSERT_EQ(sc_a.records.size(), sc_b.records.size()) << label;
  for (std::size_t i = 0; i < sc_a.records.size(); ++i) {
    EXPECT_EQ(sc_a.records[i], sc_b.records[i]) << label << " record " << i;
  }
  ASSERT_EQ(sc_a.per_device.size(), sc_b.per_device.size()) << label;
  for (std::size_t i = 0; i < sc_a.per_device.size(); ++i) {
    EXPECT_EQ(sc_a.per_device[i].device, sc_b.per_device[i].device) << label;
    EXPECT_EQ(sc_a.per_device[i].offset, sc_b.per_device[i].offset) << label;
    EXPECT_EQ(sc_a.per_device[i].count, sc_b.per_device[i].count) << label;
  }
  // downsample (only when the spec carries a window)
  if (spec.window_ns > 0) {
    const FleetWindows dw_a = a.downsample(spec);
    const FleetWindows dw_b = b.downsample(spec);
    ASSERT_EQ(dw_a.per_device.size(), dw_b.per_device.size()) << label;
    for (std::size_t i = 0; i < dw_a.per_device.size(); ++i) {
      EXPECT_EQ(dw_a.per_device[i].first, dw_b.per_device[i].first) << label;
      ASSERT_EQ(dw_a.per_device[i].second.size(),
                dw_b.per_device[i].second.size())
          << label;
      for (std::size_t w = 0; w < dw_a.per_device[i].second.size(); ++w) {
        EXPECT_TRUE(dw_a.per_device[i].second[w] == dw_b.per_device[i].second[w])
            << label;
      }
    }
    ASSERT_EQ(dw_a.merged.size(), dw_b.merged.size()) << label;
    for (std::size_t w = 0; w < dw_a.merged.size(); ++w) {
      EXPECT_TRUE(dw_a.merged[w] == dw_b.merged[w]) << label;
    }
  }
  // network_breakdown
  const FleetBreakdown nb_a = a.network_breakdown(spec);
  const FleetBreakdown nb_b = b.network_breakdown(spec);
  ASSERT_EQ(nb_a.per_device.size(), nb_b.per_device.size()) << label;
  for (std::size_t i = 0; i < nb_a.per_device.size(); ++i) {
    EXPECT_EQ(nb_a.per_device[i].first, nb_b.per_device[i].first) << label;
    EXPECT_TRUE(usage_equal(nb_a.per_device[i].second, nb_b.per_device[i].second))
        << label;
  }
  EXPECT_TRUE(usage_equal(nb_a.merged, nb_b.merged)) << label;
  EXPECT_EQ(nb_a.total_energy_mwh(), nb_b.total_energy_mwh()) << label;
}

// ---------------------------------------------------------------------------
// Worker-count bit parity
// ---------------------------------------------------------------------------

TEST(QueryEngine, WorkerCountsAreBitIdentical) {
  Tsdb db{TsdbOptions{16, 48}};
  const auto fleet = make_fleet(120, 90, 6, 7);
  ingest_all(db, fleet.arrival_order);
  const QueryEngine seq{db, QueryEngineOptions{1}};
  const QueryEngine par3{db, QueryEngineOptions{3}};
  const QueryEngine par8{db, QueryEngineOptions{8}};

  QuerySpec all;
  all.window_ns = 2'000'000'000;
  expect_engines_agree(seq, par3, all, "all-devices w3");
  expect_engines_agree(seq, par8, all, "all-devices w8");

  QuerySpec mid = all;
  mid.t0_ns = fleet.t_min_ns + (fleet.t_max_ns - fleet.t_min_ns) / 4;
  mid.t1_ns = fleet.t_max_ns - (fleet.t_max_ns - fleet.t_min_ns) / 4;
  mid.filter.stored_offline = false;
  expect_engines_agree(seq, par3, mid, "mid-range filtered w3");
  expect_engines_agree(seq, par8, mid, "mid-range filtered w8");
}

// ---------------------------------------------------------------------------
// Fleet merges vs naive per-device references
// ---------------------------------------------------------------------------

TEST(QueryEngine, MergedAggregateMatchesNaiveDeviceOrderFold) {
  Tsdb db{TsdbOptions{8, 32}};
  const auto fleet = make_fleet(40, 120, 4, 11);
  ingest_all(db, fleet.arrival_order);
  const QueryEngine engine{db, QueryEngineOptions{4}};

  QuerySpec spec;
  const FleetAggregate got = engine.aggregate(spec);
  // Reference: sorted per-device Tsdb aggregates, merged in device order.
  auto devices = db.devices();
  std::uint64_t count = 0;
  double energy = 0.0;
  std::size_t present = 0;
  for (const auto& id : devices) {
    const auto agg = db.aggregate(id, INT64_MIN, INT64_MAX);
    ASSERT_TRUE(agg.has_value());
    ++present;
    count += agg->count;
    energy += agg->sum_energy_mwh;
    const auto it = std::find_if(
        got.per_device.begin(), got.per_device.end(),
        [&](const auto& entry) { return entry.first == id; });
    ASSERT_NE(it, got.per_device.end()) << id;
    EXPECT_TRUE(it->second == *agg) << id;
  }
  EXPECT_EQ(got.per_device.size(), present);
  EXPECT_EQ(got.merged.count, count);
  EXPECT_NEAR(got.merged.sum_energy_mwh, energy, 1e-9);
  // per_device is sorted by device id.
  EXPECT_TRUE(std::is_sorted(
      got.per_device.begin(), got.per_device.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(QueryEngine, ScanIsDeviceOrderedAndSpanned) {
  Tsdb db{TsdbOptions{4, 40}};
  const auto fleet = make_fleet(12, 150, 3, 23);
  ingest_all(db, fleet.arrival_order);
  const QueryEngine engine{db, QueryEngineOptions{4}};

  QuerySpec spec;
  spec.t0_ns = fleet.t_min_ns + 2'000'000'000;
  spec.t1_ns = fleet.t_max_ns - 2'000'000'000;
  const FleetScan got = engine.scan(spec);
  // Spans tile the flat array in sorted device order.
  std::size_t expected_offset = 0;
  for (std::size_t i = 0; i < got.per_device.size(); ++i) {
    EXPECT_EQ(got.per_device[i].offset, expected_offset);
    if (i > 0) {
      EXPECT_LT(got.per_device[i - 1].device, got.per_device[i].device);
    }
    expected_offset += got.per_device[i].count;
  }
  EXPECT_EQ(expected_offset, got.records.size());
  // Each span reproduces the device's own sequential scan exactly.
  for (const auto& span : got.per_device) {
    const auto want = db.scan(span.device, spec.t0_ns, spec.t1_ns);
    ASSERT_EQ(span.count, want.size()) << span.device;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.records[span.offset + i], want[i]) << span.device;
    }
  }
}

TEST(QueryEngine, DownsampleMergesAcrossDevicesOnOneGrid) {
  Tsdb db{TsdbOptions{4, 64}};
  const auto fleet = make_fleet(10, 200, 2, 31);
  ingest_all(db, fleet.arrival_order);
  const QueryEngine engine{db, QueryEngineOptions{4}};

  QuerySpec spec;
  spec.t0_ns = fleet.t_min_ns;
  spec.t1_ns = fleet.t_max_ns + 1;
  spec.window_ns = 1'000'000'000;
  const FleetWindows got = engine.downsample(spec);
  ASSERT_FALSE(got.merged.empty());
  // Every merged window start sits on the t0-anchored grid.
  for (const auto& w : got.merged) {
    EXPECT_EQ((w.start_ns - spec.t0_ns) % spec.window_ns, 0);
  }
  // The merged fold equals a naive fold over the per-device windows.
  std::map<std::int64_t, std::uint64_t> counts;
  std::map<std::int64_t, double> energy;
  for (const auto& [id, windows] : got.per_device) {
    (void)id;
    for (const auto& w : windows) {
      counts[w.start_ns] += w.count;
      energy[w.start_ns] += w.sum_energy_mwh;
    }
  }
  ASSERT_EQ(counts.size(), got.merged.size());
  std::uint64_t total = 0;
  for (const auto& w : got.merged) {
    EXPECT_EQ(w.count, counts[w.start_ns]);
    EXPECT_EQ(w.sum_energy_mwh, energy[w.start_ns]);
    total += w.count;
  }
  // Everything ingested lands in exactly one merged window.
  EXPECT_EQ(total, db.stats().records_ingested);
  // t0 overrides are billing scope marks and must not re-anchor any
  // device's grid: downsample ignores them entirely.
  QuerySpec with_override = spec;
  with_override.t0_overrides["dev-1"] = spec.t0_ns + 500'000'000;
  const FleetWindows again = engine.downsample(with_override);
  ASSERT_EQ(again.merged.size(), got.merged.size());
  for (std::size_t i = 0; i < got.merged.size(); ++i) {
    EXPECT_TRUE(again.merged[i] == got.merged[i]) << "window " << i;
  }
}

// ---------------------------------------------------------------------------
// Device subsets and billing-scope overrides
// ---------------------------------------------------------------------------

TEST(QueryEngine, DeviceSubsetAndT0OverridesMatchSequentialCalls) {
  Tsdb db{TsdbOptions{8, 32}};
  const auto fleet = make_fleet(30, 100, 4, 41);
  ingest_all(db, fleet.arrival_order);
  const QueryEngine engine{db, QueryEngineOptions{4}};

  QuerySpec spec;
  spec.devices = {"dev-3", "dev-7", "dev-7", "dev-12", "dev-29", "dev-999"};
  const std::int64_t cut =
      fleet.t_min_ns + (fleet.t_max_ns - fleet.t_min_ns) / 2;
  spec.t0_overrides["dev-7"] = cut;
  spec.t0_overrides["dev-12"] = INT64_MAX;  // everything out of scope

  const FleetAggregate got = engine.aggregate(spec);
  // dev-12 (scope excludes all) and dev-999 (absent) are omitted;
  // duplicates collapse.
  ASSERT_EQ(got.per_device.size(), 3u);
  EXPECT_EQ(got.per_device[0].first, "dev-29");  // sorted lexicographically
  EXPECT_EQ(got.per_device[1].first, "dev-3");
  EXPECT_EQ(got.per_device[2].first, "dev-7");
  const auto want3 = db.aggregate("dev-3", INT64_MIN, INT64_MAX);
  const auto want7 = db.aggregate("dev-7", cut, INT64_MAX);
  ASSERT_TRUE(want3 && want7);
  EXPECT_TRUE(got.per_device[1].second == *want3);
  EXPECT_TRUE(got.per_device[2].second == *want7);

  const FleetBreakdown nb = engine.network_breakdown(spec);
  ASSERT_EQ(nb.per_device.size(), 3u);
  EXPECT_TRUE(usage_equal(nb.per_device[2].second,
                          db.network_breakdown("dev-7", cut)));
}

// ---------------------------------------------------------------------------
// Per-shard query counters fold on read (the TSan-pinned satellite)
// ---------------------------------------------------------------------------

TEST(QueryEngine, ShardLocalCountersFoldIntoStats) {
  Tsdb db{TsdbOptions{8, 24}};
  const auto fleet = make_fleet(24, 120, 4, 53);
  ingest_all(db, fleet.arrival_order);
  const QueryEngine engine{db, QueryEngineOptions{4}};

  EXPECT_EQ(db.stats().segments_pruned, 0u);
  EXPECT_EQ(db.stats().summary_hits, 0u);
  // A narrow fleet query prunes segments on every shard's workers...
  QuerySpec narrow;
  narrow.t0_ns = fleet.t_max_ns - 1'000'000'000;
  (void)engine.aggregate(narrow);
  const auto after_narrow = db.stats();
  EXPECT_GT(after_narrow.segments_pruned, 0u);
  // ...and a whole-history aggregate answers from summaries, in parallel.
  QuerySpec whole;
  (void)engine.aggregate(whole);
  const auto after_whole = db.stats();
  EXPECT_GT(after_whole.summary_hits, 0u);
  EXPECT_GE(after_whole.segments_pruned, after_narrow.segments_pruned);
}

// ---------------------------------------------------------------------------
// Pool reuse
// ---------------------------------------------------------------------------

TEST(QueryEngine, PoolSurvivesManyQueriesAndEmptySpecs) {
  Tsdb db{TsdbOptions{4, 32}};
  const auto fleet = make_fleet(16, 60, 3, 61);
  ingest_all(db, fleet.arrival_order);
  const QueryEngine engine{db, QueryEngineOptions{4}};
  EXPECT_EQ(engine.workers(), 4u);

  QuerySpec all;
  all.window_ns = 1'000'000'000;
  const FleetAggregate first = engine.aggregate(all);
  for (int i = 0; i < 200; ++i) {
    const FleetAggregate again = engine.aggregate(all);
    ASSERT_EQ(again.per_device.size(), first.per_device.size());
    ASSERT_TRUE(again.merged == first.merged) << "query " << i;
  }
  // Degenerate inputs: unknown devices only, and a window-less downsample.
  QuerySpec unknown;
  unknown.devices = {"nope-1", "nope-2"};
  EXPECT_TRUE(engine.aggregate(unknown).empty());
  EXPECT_TRUE(engine.scan(unknown).records.empty());
  QuerySpec no_window;
  EXPECT_TRUE(engine.downsample(no_window).per_device.empty());
}

TEST(QueryEngine, PoolJoinsBeforeRethrowingAStrideException) {
  // A throwing stride must (a) not std::terminate when it runs on a pool
  // thread, (b) join every other stride before the exception unwinds the
  // caller (captured state must stay valid), and (c) leave the pool
  // reusable for the next job.
  const QueryPool pool{4};
  for (int round = 0; round < 20; ++round) {
    std::vector<int> touched(64, 0);
    bool threw = false;
    try {
      pool.parallel_for(touched.size(), [&](std::size_t i) {
        touched[i] = 1;
        if (i == 13) {
          throw std::runtime_error("stride 13 failed");
        }
      });
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_STREQ(e.what(), "stride 13 failed");
    }
    ASSERT_TRUE(threw) << "round " << round;
    // The throwing worker's stride stops where it threw, but every *other*
    // stride runs to completion before the exception reaches the caller
    // (worker k owns indices k, k+W, ... — the documented static striping).
    for (std::size_t i = 0; i < touched.size(); ++i) {
      if (i % pool.workers() != 13 % pool.workers() || i <= 13) {
        EXPECT_EQ(touched[i], 1) << "index " << i << " round " << round;
      }
    }
    // The pool is intact: a clean job right after succeeds.
    std::vector<int> clean(32, 0);
    pool.parallel_for(clean.size(), [&](std::size_t i) { clean[i] = 1; });
    for (const int v : clean) {
      EXPECT_EQ(v, 1);
    }
  }
  // Caller-stride throws (index 3 of 4 workers) take the same join path.
  bool caller_threw = false;
  try {
    pool.parallel_for(4, [](std::size_t i) {
      if (i == 3) {  // stride owned by the participating caller
        throw std::logic_error("caller stride");
      }
    });
  } catch (const std::logic_error&) {
    caller_threw = true;
  }
  EXPECT_TRUE(caller_threw);
}

// ---------------------------------------------------------------------------
// Store-backed billing through fleet queries
// ---------------------------------------------------------------------------

TEST(QueryEngine, StoreBackedBillingViaEngineMatchesExactAccumulator) {
  Tsdb db{TsdbOptions{8, 64}};
  core::BillingService exact{"wan-0", core::Tariff{}};
  const auto fleet = make_fleet(20, 300, 4, 71);
  for (const auto& r : fleet.arrival_order) {
    db.ingest(r);
    exact.ingest(r);
  }
  const QueryEngine engine{db, QueryEngineOptions{4}};
  core::BillingService backed{"wan-0", core::Tariff{}};
  backed.bind_store(&db);
  backed.bind_engine(&engine);
  for (const auto& id : fleet.devices) {
    backed.mark_billable(id);
  }

  const double tolerance = 300.0 * kEnergyToleranceMwh;
  EXPECT_NEAR(backed.total_energy_mwh(), exact.total_energy_mwh(),
              tolerance * static_cast<double>(fleet.devices.size()));
  const auto invoices = backed.invoice_all();
  ASSERT_EQ(invoices.size(), fleet.devices.size());
  for (const auto& invoice : invoices) {
    const auto want = exact.invoice_for(invoice.device_id);
    EXPECT_NEAR(invoice.total_energy_mwh, want.total_energy_mwh, tolerance)
        << invoice.device_id;
    ASSERT_EQ(invoice.lines.size(), want.lines.size()) << invoice.device_id;
    for (std::size_t l = 0; l < invoice.lines.size(); ++l) {
      EXPECT_EQ(invoice.lines[l].network, want.lines[l].network);
      EXPECT_EQ(invoice.lines[l].records, want.lines[l].records);
      EXPECT_NEAR(invoice.lines[l].cost, want.lines[l].cost, 1e-6);
    }
    // invoice_all agrees with the per-device read.
    const auto single = backed.invoice_for(invoice.device_id);
    EXPECT_EQ(invoice.total_energy_mwh, single.total_energy_mwh);
  }
  // Billing-scope marks ride the fleet query as t0 overrides.
  core::BillingService scoped{"wan-0", core::Tariff{}};
  scoped.bind_store(&db);
  scoped.bind_engine(&engine);
  const std::int64_t cut =
      fleet.t_min_ns + (fleet.t_max_ns - fleet.t_min_ns) / 2;
  scoped.mark_billable("dev-1", cut);
  double want_energy = 0.0;
  for (const auto& [network, use] : db.network_breakdown("dev-1", cut)) {
    (void)network;
    want_energy += use.energy_mwh;
  }
  EXPECT_NEAR(scoped.total_energy_mwh(), want_energy, 1e-9);
  // No billable devices: the engine path must not widen to every device.
  core::BillingService empty{"wan-0", core::Tariff{}};
  empty.bind_store(&db);
  empty.bind_engine(&engine);
  EXPECT_EQ(empty.total_energy_mwh(), 0.0);
  EXPECT_TRUE(empty.invoice_all().empty());
}

// ---------------------------------------------------------------------------
// Query/ingest interleaving differential fuzz
// ---------------------------------------------------------------------------

TEST(QueryEngine, DifferentialFuzzParallelVsSequentialOverRandomIngest) {
  // Randomized ingest orders (shuffled bursts, duplicated retransmissions,
  // out-of-order roamed batches) interleaved with fleet queries; after every
  // ingest stage the parallel engines must agree bit-for-bit with the
  // sequential one on every query type.
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    util::Rng rng{0xfeed + trial};
    const std::size_t devices = 8 + rng() % 24;
    const std::size_t per_device = 40 + rng() % 80;
    auto fleet = make_fleet(devices, per_device, 2 + rng() % 4, 100 + trial);
    // Shuffle arrival order in bursts to randomize shard interleave beyond
    // the round-robin default.
    for (std::size_t i = fleet.arrival_order.size(); i > 1; --i) {
      std::swap(fleet.arrival_order[i - 1], fleet.arrival_order[rng() % i]);
    }
    Tsdb db{TsdbOptions{1 + rng() % 12, 8 + rng() % 56}};
    const QueryEngine seq{db, QueryEngineOptions{1}};
    const QueryEngine par{db, QueryEngineOptions{2 + rng() % 6}};

    const std::size_t stages = 3;
    std::size_t next = 0;
    for (std::size_t stage = 0; stage < stages; ++stage) {
      const std::size_t until = stage + 1 == stages
                                    ? fleet.arrival_order.size()
                                    : fleet.arrival_order.size() *
                                          (stage + 1) / stages;
      for (; next < until; ++next) {
        db.ingest(fleet.arrival_order[next]);
        if (rng() % 16 == 0) {  // QoS-1 retransmission
          db.ingest(fleet.arrival_order[rng() % (next + 1)]);
        }
      }
      QuerySpec spec;
      spec.window_ns = 500'000'000 + static_cast<std::int64_t>(rng() % 4) *
                                         500'000'000;
      switch (rng() % 4) {
        case 0:
          break;  // whole history, all devices
        case 1:
          spec.t0_ns = fleet.t_min_ns +
                       static_cast<std::int64_t>(rng() % 30) * 1'000'000'000;
          spec.t1_ns = fleet.t_max_ns -
                       static_cast<std::int64_t>(rng() % 10) * 1'000'000'000;
          break;
        case 2:
          spec.filter.stored_offline = rng() % 2 == 0;
          break;
        default:
          spec.filter.network = "wan-" + std::to_string(rng() % 4);
          for (std::size_t d = 0; d < devices; d += 1 + rng() % 3) {
            spec.devices.push_back("dev-" + std::to_string(d + 1));
          }
          break;
      }
      if (rng() % 3 == 0 && !fleet.devices.empty()) {
        spec.t0_overrides[fleet.devices[rng() % fleet.devices.size()]] =
            fleet.t_min_ns +
            static_cast<std::int64_t>(rng() % 60) * 1'000'000'000;
      }
      expect_engines_agree(seq, par, spec,
                           "trial " + std::to_string(trial) + " stage " +
                               std::to_string(stage));
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent ingest racing live queries (the MVCC tentpole gate)
// ---------------------------------------------------------------------------

/// Per-device acceptance order: the device's subsequence of the fleet
/// arrival order.  Sequences are unique per device, so the store accepts
/// every record — duplicates injected later are rejected and do not move
/// the cut.
std::map<core::DeviceId, std::vector<ConsumptionRecord>> acceptance_order(
    const FleetWorkload& fleet) {
  std::map<core::DeviceId, std::vector<ConsumptionRecord>> accepted;
  for (const auto& r : fleet.arrival_order) {
    accepted[r.device_id].push_back(r);
  }
  return accepted;
}

/// Quiesced oracle for a query answered mid-ingest: a fresh store with the
/// same options holding, per device, exactly the first `n` accepted records
/// the live query's cut reported.  Bit parity against this store is the
/// snapshot-consistency contract of store/tsdb.hpp.
std::unique_ptr<Tsdb> replay_at_cut(
    const TsdbOptions& options,
    const std::map<core::DeviceId, std::vector<ConsumptionRecord>>& accepted,
    const FleetCut& cut) {
  auto replay = std::make_unique<Tsdb>(options);
  for (const auto& [id, n] : cut.per_device) {
    const auto it = accepted.find(id);
    if (it == accepted.end()) {
      EXPECT_EQ(n, 0u) << id << ": cut for a device the workload never sent";
      continue;
    }
    EXPECT_LE(n, it->second.size()) << id << ": cut past the accepted stream";
    const std::uint64_t take =
        std::min<std::uint64_t>(n, it->second.size());
    for (std::uint64_t i = 0; i < take; ++i) {
      replay->ingest(it->second[i]);
    }
  }
  return replay;
}

/// Draws a random spec in the shape of the sequential fuzz above; always
/// carries a window so downsample is exercised too.
QuerySpec random_live_spec(util::Rng& rng, const FleetWorkload& fleet) {
  QuerySpec spec;
  spec.window_ns =
      500'000'000 + static_cast<std::int64_t>(rng() % 4) * 500'000'000;
  switch (rng() % 4) {
    case 0:
      break;  // whole history, all devices
    case 1:
      spec.t0_ns = fleet.t_min_ns +
                   static_cast<std::int64_t>(rng() % 30) * 1'000'000'000;
      spec.t1_ns = fleet.t_max_ns -
                   static_cast<std::int64_t>(rng() % 10) * 1'000'000'000;
      break;
    case 2:
      spec.filter.stored_offline = rng() % 2 == 0;
      break;
    default:
      spec.filter.network = "wan-" + std::to_string(rng() % 4);
      for (std::size_t d = 0; d < fleet.devices.size(); d += 1 + rng() % 3) {
        spec.devices.push_back(fleet.devices[d]);
      }
      break;
  }
  if (rng() % 3 == 0 && !fleet.devices.empty()) {
    spec.t0_overrides[fleet.devices[rng() % fleet.devices.size()]] =
        fleet.t_min_ns + static_cast<std::int64_t>(rng() % 60) * 1'000'000'000;
  }
  return spec;
}

TEST(QueryEngine, ConcurrentIngestMatchesQuiescedReplayAtCut) {
  // A writer thread ingests the fleet (with QoS-1 duplicate retransmissions
  // mixed in) while this thread fires randomized fleet queries.  Every
  // answer captures its per-device cut and must be bit-identical to the
  // same query over a quiesced replay of exactly that cut — mid-ingest
  // answers are real answers, not approximations.
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    util::Rng rng{0xace0 + trial};
    const auto fleet =
        make_fleet(10 + rng() % 14, 60 + rng() % 60, 3, 0x900d + trial);
    const auto accepted = acceptance_order(fleet);
    const TsdbOptions opts{1 + rng() % 8, 8 + rng() % 40};
    Tsdb db{opts};
    const QueryEngine live{db, QueryEngineOptions{2 + rng() % 4}};

    std::atomic<bool> done{false};
    std::thread writer([&db, &fleet, &done, trial] {
      util::Rng wrng{0x417 + trial};
      for (std::size_t i = 0; i < fleet.arrival_order.size(); ++i) {
        db.ingest(fleet.arrival_order[i]);
        if (wrng() % 13 == 0) {  // retransmission: rejected by dedup
          db.ingest(fleet.arrival_order[wrng() % (i + 1)]);
        }
      }
      done.store(true, std::memory_order_release);
    });

    std::size_t checked = 0;
    // Keep querying until the writer finished AND at least a dozen answers
    // were replay-checked (most of them genuinely mid-ingest).
    while (checked < 12 || !done.load(std::memory_order_acquire)) {
      QuerySpec spec = random_live_spec(rng, fleet);
      FleetCut cut;
      spec.capture_cut = &cut;
      const std::string label =
          "trial " + std::to_string(trial) + " query " + std::to_string(checked);
      // Void lambda so ASSERT_* bails out of the check, not the test body —
      // the writer thread below must always be joined.
      [&]() -> void {
      switch (checked % 5) {
        case 0: {
          const FleetAggregate got = live.aggregate(spec);
          const auto replay = replay_at_cut(opts, accepted, cut);
          spec.capture_cut = nullptr;
          const QueryEngine oracle{*replay, QueryEngineOptions{1}};
          const FleetAggregate want = oracle.aggregate(spec);
          ASSERT_EQ(got.per_device.size(), want.per_device.size()) << label;
          for (std::size_t i = 0; i < got.per_device.size(); ++i) {
            EXPECT_EQ(got.per_device[i].first, want.per_device[i].first)
                << label;
            EXPECT_TRUE(got.per_device[i].second == want.per_device[i].second)
                << label << " device " << got.per_device[i].first;
          }
          EXPECT_TRUE(got.merged == want.merged) << label;
          break;
        }
        case 1: {
          const FleetScan got = live.scan(spec);
          const auto replay = replay_at_cut(opts, accepted, cut);
          spec.capture_cut = nullptr;
          const QueryEngine oracle{*replay, QueryEngineOptions{1}};
          const FleetScan want = oracle.scan(spec);
          ASSERT_EQ(got.records.size(), want.records.size()) << label;
          for (std::size_t i = 0; i < got.records.size(); ++i) {
            EXPECT_EQ(got.records[i], want.records[i]) << label;
          }
          ASSERT_EQ(got.per_device.size(), want.per_device.size()) << label;
          for (std::size_t i = 0; i < got.per_device.size(); ++i) {
            EXPECT_EQ(got.per_device[i].device, want.per_device[i].device)
                << label;
            EXPECT_EQ(got.per_device[i].offset, want.per_device[i].offset)
                << label;
            EXPECT_EQ(got.per_device[i].count, want.per_device[i].count)
                << label;
          }
          break;
        }
        case 2: {
          const FleetStats got = live.current_stats(spec);
          const auto replay = replay_at_cut(opts, accepted, cut);
          spec.capture_cut = nullptr;
          const QueryEngine oracle{*replay, QueryEngineOptions{1}};
          const FleetStats want = oracle.current_stats(spec);
          ASSERT_EQ(got.per_device.size(), want.per_device.size()) << label;
          for (std::size_t i = 0; i < got.per_device.size(); ++i) {
            EXPECT_EQ(got.per_device[i].first, want.per_device[i].first)
                << label;
            EXPECT_TRUE(
                stats_equal(got.per_device[i].second, want.per_device[i].second))
                << label << " device " << got.per_device[i].first;
          }
          EXPECT_TRUE(stats_equal(got.merged, want.merged)) << label;
          break;
        }
        case 3: {
          const FleetWindows got = live.downsample(spec);
          const auto replay = replay_at_cut(opts, accepted, cut);
          spec.capture_cut = nullptr;
          const QueryEngine oracle{*replay, QueryEngineOptions{1}};
          const FleetWindows want = oracle.downsample(spec);
          ASSERT_EQ(got.per_device.size(), want.per_device.size()) << label;
          for (std::size_t i = 0; i < got.per_device.size(); ++i) {
            EXPECT_EQ(got.per_device[i].first, want.per_device[i].first)
                << label;
            ASSERT_EQ(got.per_device[i].second.size(),
                      want.per_device[i].second.size())
                << label;
            for (std::size_t w = 0; w < got.per_device[i].second.size(); ++w) {
              EXPECT_TRUE(
                  got.per_device[i].second[w] == want.per_device[i].second[w])
                  << label;
            }
          }
          ASSERT_EQ(got.merged.size(), want.merged.size()) << label;
          for (std::size_t w = 0; w < got.merged.size(); ++w) {
            EXPECT_TRUE(got.merged[w] == want.merged[w]) << label;
          }
          break;
        }
        default: {
          const FleetBreakdown got = live.network_breakdown(spec);
          const auto replay = replay_at_cut(opts, accepted, cut);
          spec.capture_cut = nullptr;
          const QueryEngine oracle{*replay, QueryEngineOptions{1}};
          const FleetBreakdown want = oracle.network_breakdown(spec);
          ASSERT_EQ(got.per_device.size(), want.per_device.size()) << label;
          for (std::size_t i = 0; i < got.per_device.size(); ++i) {
            EXPECT_EQ(got.per_device[i].first, want.per_device[i].first)
                << label;
            EXPECT_TRUE(
                usage_equal(got.per_device[i].second, want.per_device[i].second))
                << label;
          }
          EXPECT_TRUE(usage_equal(got.merged, want.merged)) << label;
          EXPECT_EQ(got.total_energy_mwh(), want.total_energy_mwh()) << label;
          break;
        }
      }
      }();
      if (::testing::Test::HasFatalFailure()) {
        break;
      }
      ++checked;
    }
    writer.join();
  }
}

TEST(QueryEngine, ParallelReaderThreadsObserveMonotoneCuts) {
  // Two query threads (own engines, pool workers inside) race one writer.
  // Each thread checks snapshot sanity per answer — merged count equals the
  // per-device fold, and for an unfiltered whole-history aggregate every
  // per-device count equals the captured cut exactly — and that successive
  // cuts never move backwards (epochs only advance).  After the writer
  // joins, a final quiesced answer must be bit-identical to a fresh
  // single-threaded store of the whole fleet.
  const auto fleet = make_fleet(16, 160, 4, 0x51ab);
  Tsdb db{TsdbOptions{4, 32}};
  std::atomic<bool> done{false};
  std::thread writer([&] {
    ingest_all(db, fleet.arrival_order);
    done.store(true, std::memory_order_release);
  });

  auto reader = [&db, &done](unsigned workers) {
    const QueryEngine engine{db, QueryEngineOptions{workers}};
    std::map<core::DeviceId, std::uint64_t> last;
    bool final_pass = false;
    while (!final_pass) {
      final_pass = done.load(std::memory_order_acquire);
      QuerySpec spec;  // whole history, all devices, no filter
      FleetCut cut;
      spec.capture_cut = &cut;
      const FleetAggregate got = engine.aggregate(spec);
      std::map<core::DeviceId, std::uint64_t> cut_by_device;
      for (const auto& [id, n] : cut.per_device) {
        // Cuts only advance: a later snapshot can never show fewer records.
        const auto it = last.find(id);
        if (it != last.end()) {
          EXPECT_GE(n, it->second) << id;
        }
        last[id] = n;
        cut_by_device.emplace(id, n);
      }
      std::uint64_t fold = 0;
      for (const auto& [id, agg] : got.per_device) {
        fold += agg.count;
        // Unfiltered whole-history fold: the answer *is* the cut.
        const auto it = cut_by_device.find(id);
        ASSERT_TRUE(it != cut_by_device.end()) << id;
        EXPECT_EQ(agg.count, it->second) << id;
      }
      EXPECT_EQ(got.merged.count, fold);
    }
  };
  std::thread r1(reader, 2);
  std::thread r2(reader, 3);
  r1.join();
  r2.join();
  writer.join();

  // Quiesced epilogue: the raced store answers bit-identically to a store
  // that never saw a concurrent reader.
  Tsdb clean{TsdbOptions{4, 32}};
  ingest_all(clean, fleet.arrival_order);
  const QueryEngine raced{db, QueryEngineOptions{3}};
  const QueryEngine quiet{clean, QueryEngineOptions{1}};
  QuerySpec spec;
  spec.window_ns = 1'000'000'000;
  expect_engines_agree(raced, quiet, spec, "post-race vs clean store");
}

}  // namespace
}  // namespace emon::store
