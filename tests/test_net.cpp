// Unit tests for emon::net — channels, RSSI/Wi-Fi, MQTT broker+client,
// TDMA slots, backhaul routing and beacon time-sync.

#include <gtest/gtest.h>

#include <cmath>

#include "hw/ds3231.hpp"
#include "net/backhaul.hpp"
#include "net/channel.hpp"
#include "net/mqtt.hpp"
#include "net/tdma.hpp"
#include "net/timesync.hpp"
#include "net/transport.hpp"
#include "net/wifi.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace emon::net {
namespace {

using sim::milliseconds;
using sim::seconds;
using sim::SimTime;

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

TEST(Channel, DeliversAfterDelay) {
  sim::Kernel k;
  ChannelParams params;
  params.base_latency = milliseconds(5);
  params.jitter = sim::Duration{0};
  params.bandwidth_bps = 0.0;
  Channel ch{k, params, util::Rng{1}};
  SimTime delivered_at;
  EXPECT_TRUE(ch.send(100, [&](std::uint64_t) { delivered_at = k.now(); }));
  k.run();
  EXPECT_EQ(delivered_at.ns(), milliseconds(5).ns());
  EXPECT_EQ(ch.delivered(), 1u);
}

TEST(Channel, BandwidthTermScalesWithSize) {
  sim::Kernel k;
  ChannelParams params;
  params.base_latency = sim::Duration{0};
  params.jitter = sim::Duration{0};
  params.bandwidth_bps = 8e6;  // 1 byte/us
  Channel ch{k, params, util::Rng{1}};
  SimTime t1, t2;
  ch.send(1000, [&](std::uint64_t) { t1 = k.now(); });
  k.run();
  const SimTime base = k.now();
  ch.send(2000, [&](std::uint64_t) { t2 = k.now(); });
  k.run();
  EXPECT_EQ((t1 - SimTime{}).ns(), 1'000'000);
  EXPECT_EQ((t2 - base).ns(), 2'000'000);
}

TEST(Channel, ClosedChannelDrops) {
  sim::Kernel k;
  Channel ch{k, {}, util::Rng{1}};
  ch.set_open(false);
  bool delivered = false;
  EXPECT_FALSE(ch.send(10, [&](std::uint64_t) { delivered = true; }));
  k.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(ch.dropped(), 1u);
}

TEST(Channel, LossProbabilityDropsApproximately) {
  sim::Kernel k;
  ChannelParams params;
  params.loss_probability = 0.25;
  Channel ch{k, params, util::Rng{5}};
  int delivered = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    ch.send(10, [&](std::uint64_t) { ++delivered; });
  }
  k.run();
  EXPECT_NEAR(static_cast<double>(delivered) / kN, 0.75, 0.03);
}

TEST(Channel, FifoOrderingPreserved) {
  // Even with jitter, a later send never overtakes an earlier one.
  sim::Kernel k;
  ChannelParams params;
  params.base_latency = milliseconds(1);
  params.jitter = milliseconds(10);
  Channel ch{k, params, util::Rng{9}};
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    ch.send(10, [&order, i](std::uint64_t) { order.push_back(i); });
  }
  k.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

// ---------------------------------------------------------------------------
// RSSI / WifiMedium
// ---------------------------------------------------------------------------

TEST(Rssi, DecreasesWithDistance) {
  PathLossParams params;
  params.shadowing_sigma_db = 0.0;
  const double near =
      rssi_dbm(params, Position{0, 0}, Position{2, 0}, 1);
  const double far =
      rssi_dbm(params, Position{0, 0}, Position{50, 0}, 1);
  EXPECT_GT(near, far);
}

TEST(Rssi, DeterministicPerPair) {
  PathLossParams params;
  const double a = rssi_dbm(params, Position{0, 0}, Position{10, 0}, 42);
  const double b = rssi_dbm(params, Position{0, 0}, Position{10, 0}, 42);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = rssi_dbm(params, Position{0, 0}, Position{10, 0}, 43);
  EXPECT_NE(a, c);  // different pair hash -> different shadowing
}

TEST(Rssi, MinimumDistanceClamped) {
  PathLossParams params;
  params.shadowing_sigma_db = 0.0;
  const double at0 = rssi_dbm(params, Position{0, 0}, Position{0, 0}, 1);
  const double at1 = rssi_dbm(params, Position{0, 0}, Position{1, 0}, 1);
  EXPECT_DOUBLE_EQ(at0, at1);
}

TEST(WifiMedium, ScanSortsByRssi) {
  sim::Kernel k;
  WifiMedium medium{k};
  AccessPoint near_ap;
  near_ap.ssid = "near";
  near_ap.host_id = "agg-n";
  near_ap.position = {5, 0};
  AccessPoint far_ap;
  far_ap.ssid = "far";
  far_ap.host_id = "agg-f";
  far_ap.position = {60, 0};
  medium.add_access_point(near_ap);
  medium.add_access_point(far_ap);

  const auto results = medium.audible_from(Position{0, 0}, "sta");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].ap.ssid, "near");
  EXPECT_GT(results[0].rssi_dbm, results[1].rssi_dbm);
}

TEST(WifiMedium, OutOfRangeApInvisible) {
  sim::Kernel k;
  WifiMedium medium{k};
  AccessPoint ap;
  ap.ssid = "x";
  ap.host_id = "h";
  ap.position = {10'000, 0};
  medium.add_access_point(ap);
  EXPECT_TRUE(medium.audible_from(Position{0, 0}, "sta").empty());
}

TEST(WifiMedium, AddRemoveFind) {
  sim::Kernel k;
  WifiMedium medium{k};
  AccessPoint ap;
  ap.ssid = "a";
  ap.host_id = "h";
  medium.add_access_point(ap);
  EXPECT_TRUE(medium.find("a").has_value());
  EXPECT_TRUE(medium.remove_access_point("a"));
  EXPECT_FALSE(medium.find("a").has_value());
  EXPECT_THROW(medium.add_access_point(AccessPoint{}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// WifiStation
// ---------------------------------------------------------------------------

struct WifiFixture : ::testing::Test {
  sim::Kernel kernel;
  WifiMedium medium{kernel};

  WifiFixture() {
    AccessPoint ap;
    ap.ssid = "wan-1";
    ap.host_id = "agg-1";
    ap.position = {0, 0};
    medium.add_access_point(ap);
  }

  WifiStation make_station() {
    return WifiStation{medium, "sta-1", WifiStationParams{}, util::Rng{3}};
  }
};

TEST_F(WifiFixture, ScanTakesChannelsTimesDwell) {
  WifiStation sta = make_station();
  sta.set_position({3, 0});
  bool done = false;
  ASSERT_TRUE(sta.start_scan([&](std::vector<ScanEntry> results) {
    done = true;
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].ap.ssid, "wan-1");
  }));
  EXPECT_EQ(sta.state(), WifiState::kScanning);
  kernel.run();
  EXPECT_TRUE(done);
  // 13 channels x 250 ms.
  EXPECT_EQ(kernel.now().ns(), milliseconds(13 * 250).ns());
}

TEST_F(WifiFixture, ScanRefusedWhileBusy) {
  WifiStation sta = make_station();
  ASSERT_TRUE(sta.start_scan([](std::vector<ScanEntry>) {}));
  EXPECT_FALSE(sta.start_scan([](std::vector<ScanEntry>) {}));
}

TEST_F(WifiFixture, AssociateWithinBounds) {
  WifiStation sta = make_station();
  sta.set_position({3, 0});
  bool connected = false;
  ASSERT_TRUE(sta.associate("wan-1", [&](bool ok) { connected = ok; }));
  kernel.run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(sta.state(), WifiState::kConnected);
  EXPECT_EQ(sta.connected_host(), "agg-1");
  EXPECT_NE(sta.uplink(), nullptr);
  EXPECT_NE(sta.downlink(), nullptr);
  const double t = kernel.now().to_seconds();
  EXPECT_GE(t, 1.3);
  EXPECT_LE(t, 1.7);
}

TEST_F(WifiFixture, AssociateUnknownSsidFails) {
  WifiStation sta = make_station();
  bool result = true;
  sta.associate("nope", [&](bool ok) { result = ok; });
  kernel.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(sta.state(), WifiState::kIdle);
}

TEST_F(WifiFixture, AssociateOutOfRangeFails) {
  WifiStation sta = make_station();
  sta.set_position({5'000, 0});
  bool result = true;
  sta.associate("wan-1", [&](bool ok) { result = ok; });
  kernel.run();
  EXPECT_FALSE(result);
}

TEST_F(WifiFixture, DisconnectClosesChannels) {
  WifiStation sta = make_station();
  sta.set_position({3, 0});
  sta.associate("wan-1", [](bool) {});
  kernel.run();
  auto uplink = sta.uplink();
  ASSERT_NE(uplink, nullptr);
  sta.disconnect();
  EXPECT_EQ(sta.state(), WifiState::kIdle);
  EXPECT_EQ(sta.uplink(), nullptr);
  EXPECT_FALSE(uplink->open());  // retained handle is closed
}

TEST_F(WifiFixture, MovingOutOfCoverageDropsLink) {
  WifiStation sta = make_station();
  sta.set_position({3, 0});
  sta.associate("wan-1", [](bool) {});
  kernel.run();
  bool dropped = false;
  sta.set_on_drop([&] { dropped = true; });
  sta.set_position({9'000, 0});
  EXPECT_TRUE(dropped);
  EXPECT_EQ(sta.state(), WifiState::kIdle);
}

TEST_F(WifiFixture, DisconnectCancelsInFlightScan) {
  WifiStation sta = make_station();
  bool fired = false;
  sta.start_scan([&](std::vector<ScanEntry>) { fired = true; });
  sta.disconnect();
  kernel.run();
  EXPECT_FALSE(fired);
}

// ---------------------------------------------------------------------------
// MQTT
// ---------------------------------------------------------------------------

TEST(MqttTopics, WildcardMatching) {
  EXPECT_TRUE(topic_matches("a/b/c", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/b/c", "a/b"));
  EXPECT_FALSE(topic_matches("a/b", "a/b/c"));
  EXPECT_TRUE(topic_matches("a/+/c", "a/x/c"));
  EXPECT_FALSE(topic_matches("a/+/c", "a/x/y"));
  EXPECT_TRUE(topic_matches("a/#", "a/b/c/d"));
  EXPECT_TRUE(topic_matches("#", "anything/at/all"));
  EXPECT_TRUE(topic_matches("+/b", "a/b"));
  EXPECT_FALSE(topic_matches("+", "a/b"));
  EXPECT_TRUE(topic_matches("emon/report/+", "emon/report/dev-1"));
  EXPECT_FALSE(topic_matches("emon/report/+", "emon/ctrl/dev-1"));
}

struct MqttFixture : ::testing::Test {
  sim::Kernel kernel;
  MqttBroker broker{kernel, "agg-1"};

  std::pair<std::shared_ptr<Channel>, std::shared_ptr<Channel>> channels() {
    ChannelParams params;
    params.base_latency = milliseconds(2);
    params.jitter = sim::Duration{0};
    return {std::make_shared<Channel>(kernel, params, util::Rng{1}),
            std::make_shared<Channel>(kernel, params, util::Rng{2})};
  }
};

TEST_F(MqttFixture, ConnectHandshake) {
  MqttClient client{kernel, "dev-1"};
  auto [up, down] = channels();
  bool connected = false;
  client.connect(broker, up, down, [&](bool ok) { connected = ok; });
  EXPECT_FALSE(client.connected());
  kernel.run();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(broker.live_sessions(), 1u);
}

TEST_F(MqttFixture, PublishReachesLocalSubscriber) {
  std::vector<std::string> seen;
  broker.subscribe_local("emon/report/+", [&](const MqttMessage& m) {
    seen.push_back(m.topic + ":" + m.sender);
  });
  MqttClient client{kernel, "dev-1"};
  auto [up, down] = channels();
  client.connect(broker, up, down, [](bool) {});
  kernel.run();
  client.publish("emon/report/dev-1", {1, 2, 3}, 0);
  kernel.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "emon/report/dev-1:dev-1");
}

TEST_F(MqttFixture, QoS1DeliversAckToPublisher) {
  broker.subscribe_local("#", [](const MqttMessage&) {});
  MqttClient client{kernel, "dev-1"};
  auto [up, down] = channels();
  client.connect(broker, up, down, [](bool) {});
  kernel.run();
  bool acked = false;
  client.publish("t", {9}, 1, [&](bool ok) { acked = ok; });
  kernel.run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(client.retransmissions(), 0u);
}

TEST_F(MqttFixture, RemoteSubscriberReceives) {
  MqttClient pub{kernel, "dev-1"};
  MqttClient sub{kernel, "dev-2"};
  auto [up1, down1] = channels();
  auto [up2, down2] = channels();
  pub.connect(broker, up1, down1, [](bool) {});
  sub.connect(broker, up2, down2, [](bool) {});
  kernel.run();
  std::vector<std::string> seen;
  sub.subscribe("emon/ctrl/#", [&](const MqttMessage& m) {
    seen.push_back(m.topic);
  });
  kernel.run();
  pub.publish("emon/ctrl/dev-2", {1}, 0);
  kernel.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "emon/ctrl/dev-2");
}

TEST_F(MqttFixture, OverlappingExactAndWildcardFiltersDeliverOnce) {
  // Regression: a session subscribed to a topic through both an exact
  // filter and a matching wildcard filter used to receive the publish
  // twice (once from the exact-topic bucket, once from the wildcard scan).
  MqttClient pub{kernel, "dev-1"};
  MqttClient sub{kernel, "dev-2"};
  auto [up1, down1] = channels();
  auto [up2, down2] = channels();
  pub.connect(broker, up1, down1, [](bool) {});
  sub.connect(broker, up2, down2, [](bool) {});
  kernel.run();
  int received = 0;
  sub.subscribe("emon/ctrl/dev-2", [&](const MqttMessage&) { ++received; });
  sub.subscribe("emon/ctrl/#", [&](const MqttMessage&) { ++received; });
  kernel.run();
  pub.publish("emon/ctrl/dev-2", {1}, 0);
  kernel.run();
  // One wire delivery; the client-side dispatcher runs it through both of
  // its matching handlers (that part is correct MQTT fan-out).
  EXPECT_EQ(received, 2);
  EXPECT_EQ(sub.transport_stats().frames_delivered, 1u);
}

TEST_F(MqttFixture, OverlappingWildcardFiltersDeliverOnce) {
  MqttClient pub{kernel, "dev-1"};
  MqttClient sub{kernel, "dev-2"};
  auto [up1, down1] = channels();
  auto [up2, down2] = channels();
  pub.connect(broker, up1, down1, [](bool) {});
  sub.connect(broker, up2, down2, [](bool) {});
  kernel.run();
  int received = 0;
  sub.subscribe("emon/ctrl/+", [&](const MqttMessage&) { ++received; });
  sub.subscribe("emon/ctrl/#", [&](const MqttMessage&) { ++received; });
  kernel.run();
  pub.publish("emon/ctrl/dev-2", {1}, 0);
  kernel.run();
  EXPECT_EQ(received, 2);  // two matching handlers, one wire delivery
  EXPECT_EQ(sub.transport_stats().frames_delivered, 1u);
}

TEST_F(MqttFixture, DistinctSessionsStillAllReceive) {
  // Dedup is per-session, not per-publish: distinct subscribers matching
  // through different filter kinds all get their copy.
  MqttClient pub{kernel, "dev-1"};
  MqttClient exact_sub{kernel, "dev-2"};
  MqttClient wild_sub{kernel, "dev-3"};
  auto [up1, down1] = channels();
  auto [up2, down2] = channels();
  auto [up3, down3] = channels();
  pub.connect(broker, up1, down1, [](bool) {});
  exact_sub.connect(broker, up2, down2, [](bool) {});
  wild_sub.connect(broker, up3, down3, [](bool) {});
  kernel.run();
  int exact_seen = 0;
  int wild_seen = 0;
  exact_sub.subscribe("emon/ctrl/dev-2", [&](const MqttMessage&) {
    ++exact_seen;
  });
  wild_sub.subscribe("emon/ctrl/#", [&](const MqttMessage&) { ++wild_seen; });
  kernel.run();
  pub.publish("emon/ctrl/dev-2", {1}, 0);
  kernel.run();
  EXPECT_EQ(exact_seen, 1);
  EXPECT_EQ(wild_seen, 1);
}

TEST_F(MqttFixture, NoEchoToPublisher) {
  MqttClient client{kernel, "dev-1"};
  auto [up, down] = channels();
  client.connect(broker, up, down, [](bool) {});
  kernel.run();
  int received = 0;
  client.subscribe("#", [&](const MqttMessage&) { ++received; });
  kernel.run();
  client.publish("x", {1}, 0);
  kernel.run();
  EXPECT_EQ(received, 0);
}

TEST_F(MqttFixture, HostPublishReachesRemoteClient) {
  MqttClient client{kernel, "dev-1"};
  auto [up, down] = channels();
  client.connect(broker, up, down, [](bool) {});
  kernel.run();
  int received = 0;
  client.subscribe("emon/beacon", [&](const MqttMessage&) { ++received; });
  kernel.run();
  broker.publish_from_host(MqttMessage{"emon/beacon", {1, 2}, 0, ""});
  kernel.run();
  EXPECT_EQ(received, 1);
}

TEST_F(MqttFixture, PublishWhileDisconnectedFails) {
  MqttClient client{kernel, "dev-1"};
  bool acked = true;
  client.publish("t", {1}, 1, [&](bool ok) { acked = ok; });
  EXPECT_FALSE(acked);
}

TEST_F(MqttFixture, DropFailsInFlightPublishes) {
  // Broker with no subscribers; sever the downlink so no PUBACK returns.
  MqttClient client{kernel, "dev-1", MqttClientParams{milliseconds(100), 2}};
  auto [up, down] = channels();
  client.connect(broker, up, down, [](bool) {});
  kernel.run();
  down->set_open(false);  // acks lost
  bool ack_result = true;
  bool called = false;
  client.publish("t", {1}, 1, [&](bool ok) {
    called = true;
    ack_result = ok;
  });
  kernel.run();  // exhausts retries
  EXPECT_TRUE(called);
  EXPECT_FALSE(ack_result);
  EXPECT_GT(client.retransmissions(), 0u);
}

TEST_F(MqttFixture, DisconnectEvictsSession) {
  MqttClient client{kernel, "dev-1"};
  auto [up, down] = channels();
  client.connect(broker, up, down, [](bool) {});
  kernel.run();
  EXPECT_EQ(broker.live_sessions(), 1u);
  client.disconnect();
  kernel.run();
  EXPECT_EQ(broker.live_sessions(), 0u);
  EXPECT_FALSE(client.connected());
}

TEST_F(MqttFixture, ReconnectReplacesSession) {
  MqttClient client{kernel, "dev-1"};
  auto [up1, down1] = channels();
  client.connect(broker, up1, down1, [](bool) {});
  kernel.run();
  client.drop();  // hard drop, broker not notified
  auto [up2, down2] = channels();
  bool ok2 = false;
  client.connect(broker, up2, down2, [&](bool ok) { ok2 = ok; });
  kernel.run();
  EXPECT_TRUE(ok2);
  EXPECT_EQ(broker.live_sessions(), 1u);
}

TEST_F(MqttFixture, ResubscribeAfterReconnect) {
  MqttClient client{kernel, "dev-1"};
  int received = 0;
  client.subscribe("emon/ctrl/dev-1",
                   [&](const MqttMessage&) { ++received; });
  auto [up1, down1] = channels();
  client.connect(broker, up1, down1, [](bool) {});
  kernel.run();
  broker.publish_from_host(MqttMessage{"emon/ctrl/dev-1", {1}, 0, ""});
  kernel.run();
  EXPECT_EQ(received, 1);
  // Roam: drop and reconnect on fresh channels; subscription must survive.
  client.drop();
  auto [up2, down2] = channels();
  client.connect(broker, up2, down2, [](bool) {});
  kernel.run();
  broker.publish_from_host(MqttMessage{"emon/ctrl/dev-1", {1}, 0, ""});
  kernel.run();
  EXPECT_EQ(received, 2);
}

TEST(MqttWire, PublishSizeAccounting) {
  MqttMessage m{"abc", {1, 2, 3, 4}, 0, ""};
  EXPECT_EQ(publish_wire_size(m), 6u + 3u + 4u);
}

// ---------------------------------------------------------------------------
// TDMA
// ---------------------------------------------------------------------------

TEST(Tdma, CapacityFromDurations) {
  TdmaSchedule sched{TdmaParams{milliseconds(100), milliseconds(5)}};
  EXPECT_EQ(sched.capacity(), 20u);
  EXPECT_FALSE(sched.full());
}

TEST(Tdma, AllocatesLowestFreeSlot) {
  TdmaSchedule sched{TdmaParams{milliseconds(100), milliseconds(5)}};
  EXPECT_EQ(sched.allocate("a").value(), 0u);
  EXPECT_EQ(sched.allocate("b").value(), 1u);
  EXPECT_FALSE(sched.allocate("a").has_value());  // duplicate
  sched.release("a");
  EXPECT_EQ(sched.allocate("c").value(), 0u);  // reuses freed slot
}

TEST(Tdma, FullScheduleRejects) {
  TdmaSchedule sched{TdmaParams{milliseconds(10), milliseconds(5)}};
  EXPECT_EQ(sched.capacity(), 2u);
  sched.allocate("a");
  sched.allocate("b");
  EXPECT_TRUE(sched.full());
  EXPECT_FALSE(sched.allocate("c").has_value());
}

TEST(Tdma, OffsetAndNextTxTime) {
  TdmaSchedule sched{TdmaParams{milliseconds(100), milliseconds(5)}};
  sched.allocate("a");  // slot 0
  sched.allocate("b");  // slot 1
  EXPECT_EQ(sched.offset_of("b")->ns(), milliseconds(5).ns());
  // At t=2 ms, slot 1 of the current frame (5 ms) is still ahead.
  const auto tx = sched.next_tx_time("b", SimTime{milliseconds(2).ns()});
  EXPECT_EQ(tx->ns(), milliseconds(5).ns());
  // At t=7 ms, slot 1 already passed: next frame.
  const auto tx2 = sched.next_tx_time("b", SimTime{milliseconds(7).ns()});
  EXPECT_EQ(tx2->ns(), milliseconds(105).ns());
  EXPECT_FALSE(sched.next_tx_time("ghost", SimTime{0}).has_value());
}

TEST(Tdma, SlotsNeverOverlap) {
  TdmaSchedule sched{TdmaParams{milliseconds(100), milliseconds(5)}};
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < sched.capacity(); ++i) {
    ids.push_back("d" + std::to_string(i));
    ASSERT_TRUE(sched.allocate(ids.back()).has_value());
  }
  std::set<std::int64_t> offsets;
  for (const auto& id : ids) {
    offsets.insert(sched.offset_of(id)->ns());
  }
  EXPECT_EQ(offsets.size(), ids.size());  // all distinct
}

TEST(Tdma, ValidatesParams) {
  EXPECT_THROW(TdmaSchedule(TdmaParams{sim::Duration{0}, milliseconds(5)}),
               std::invalid_argument);
  EXPECT_THROW(TdmaSchedule(TdmaParams{milliseconds(5), milliseconds(50)}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Backhaul
// ---------------------------------------------------------------------------

struct BackhaulFixture : ::testing::Test {
  sim::Kernel kernel;
  Backhaul mesh{kernel, util::Rng{7}};
  std::map<std::string, std::vector<Frame>> inbox;

  void add(const std::string& id) {
    mesh.add_node(id, [this, id](const Frame& m) {
      inbox[id].push_back(m);
    });
  }

  static ChannelParams fast_link() {
    ChannelParams params;
    params.base_latency = sim::microseconds(800);
    params.jitter = sim::microseconds(400);
    params.bandwidth_bps = 1e9;
    return params;
  }
};

TEST_F(BackhaulFixture, DirectDelivery) {
  add("a");
  add("b");
  mesh.add_link("a", "b", fast_link());
  EXPECT_TRUE(mesh.send({"a", "b", {1, 2}, 0}));
  kernel.run();
  ASSERT_EQ(inbox["b"].size(), 1u);
  EXPECT_EQ(inbox["b"][0].bytes, (std::vector<std::uint8_t>{1, 2}));
  // ~1 ms one hop (the paper's backhaul latency).
  EXPECT_LT(kernel.now().to_seconds(), 0.002);
  EXPECT_GT(kernel.now().to_seconds(), 0.0005);
}

TEST_F(BackhaulFixture, MultiHopRouting) {
  add("a");
  add("b");
  add("c");
  mesh.add_link("a", "b", fast_link());
  mesh.add_link("b", "c", fast_link());
  const auto route = mesh.route("a", "c");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(mesh.send({"a", "c", {}, 0}));
  kernel.run();
  EXPECT_EQ(inbox["c"].size(), 1u);
  EXPECT_TRUE(inbox["b"].empty());  // intermediate only forwards
}

TEST_F(BackhaulFixture, PicksLowerLatencyPath) {
  add("a");
  add("b");
  add("c");
  ChannelParams slow = fast_link();
  slow.base_latency = milliseconds(50);
  mesh.add_link("a", "c", slow);           // direct but slow
  mesh.add_link("a", "b", fast_link());    // two fast hops
  mesh.add_link("b", "c", fast_link());
  const auto route = mesh.route("a", "c");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->size(), 3u);  // a-b-c preferred over slow direct link
}

TEST_F(BackhaulFixture, NoRouteFails) {
  add("a");
  add("b");
  EXPECT_FALSE(mesh.send({"a", "b", {}, 0}));
  EXPECT_FALSE(mesh.route("a", "b").has_value());
  EXPECT_FALSE(mesh.send({"a", "ghost", {}, 0}));
}

TEST_F(BackhaulFixture, SelfSendDelivers) {
  add("a");
  EXPECT_TRUE(mesh.send({"a", "a", {}, 0}));
  kernel.run();
  EXPECT_EQ(inbox["a"].size(), 1u);
}

TEST_F(BackhaulFixture, NodesListed) {
  add("a");
  add("b");
  EXPECT_EQ(mesh.nodes().size(), 2u);
  EXPECT_FALSE(mesh.add_node("a", [](const Frame&) {}));
  EXPECT_THROW(mesh.add_link("a", "ghost", fast_link()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Transport interface (shared by backhaul and MQTT)
// ---------------------------------------------------------------------------

TEST_F(BackhaulFixture, AckFiresOnDelivery) {
  add("a");
  add("b");
  mesh.add_link("a", "b", fast_link());
  int acks = 0;
  bool last = false;
  EXPECT_TRUE(mesh.send(Frame{"a", "b", {1, 2, 3}, 0}, [&](bool ok) {
    ++acks;
    last = ok;
  }));
  EXPECT_EQ(acks, 0);  // not before delivery
  kernel.run();
  EXPECT_EQ(acks, 1);
  EXPECT_TRUE(last);
}

TEST_F(BackhaulFixture, AckFiresFalseWhenUnroutable) {
  add("a");
  add("b");  // no link
  int acks = 0;
  bool last = true;
  EXPECT_FALSE(mesh.send(Frame{"a", "b", {1}, 0}, [&](bool ok) {
    ++acks;
    last = ok;
  }));
  EXPECT_EQ(acks, 1);
  EXPECT_FALSE(last);
  EXPECT_EQ(mesh.transport_stats().frames_dropped, 1u);
}

TEST_F(BackhaulFixture, ChannelDropFiresAckFalse) {
  add("a");
  add("b");
  ChannelParams lossy = fast_link();
  lossy.loss_probability = 1.0;  // every datagram lost
  mesh.add_link("a", "b", lossy);
  int acks = 0;
  bool last = true;
  EXPECT_TRUE(mesh.send(Frame{"a", "b", {1}, 0}, [&](bool ok) {
    ++acks;
    last = ok;
  }));  // routable, so accepted — but the hop drops it
  kernel.run();
  EXPECT_EQ(acks, 1);
  EXPECT_FALSE(last);
  EXPECT_EQ(mesh.transport_stats().frames_dropped, 1u);
  EXPECT_EQ(mesh.transport_stats().frames_delivered, 0u);
}

TEST_F(BackhaulFixture, TransportStatsCountFrameBytes) {
  add("a");
  add("b");
  mesh.add_link("a", "b", fast_link());
  mesh.send(Frame{"a", "b", std::vector<std::uint8_t>(40), 0});
  kernel.run();
  const auto& stats = mesh.transport_stats();
  EXPECT_EQ(stats.frames_sent, 1u);
  EXPECT_EQ(stats.frames_delivered, 1u);
  EXPECT_EQ(stats.bytes_sent, 40u);
  EXPECT_EQ(stats.bytes_delivered, 40u);
  EXPECT_EQ(mesh.transport_name(), "backhaul");
}

TEST_F(BackhaulFixture, BindTraceRecordsWireBytes) {
  sim::Trace trace;
  mesh.bind_trace(&trace, "wire.backhaul");
  add("a");
  add("b");
  mesh.add_link("a", "b", fast_link());
  mesh.send(Frame{"a", "b", std::vector<std::uint8_t>(16), 0});
  kernel.run();
  ASSERT_TRUE(trace.has("wire.backhaul.tx_bytes"));
  ASSERT_TRUE(trace.has("wire.backhaul.rx_bytes"));
  EXPECT_EQ(trace.series("wire.backhaul.tx_bytes")[0].value, 16.0);
}

TEST_F(MqttFixture, ClientSendsFrameThroughTransportApi) {
  std::vector<std::uint8_t> seen;
  broker.subscribe_local("emon/report/+", [&](const MqttMessage& m) {
    seen = m.payload;
  });
  MqttClient client{kernel, "dev-1"};
  auto [up, down] = channels();
  client.connect(broker, up, down, [](bool) {});
  kernel.run();
  bool acked = false;
  EXPECT_TRUE(client.send(Frame{"dev-1", "emon/report/dev-1", {7, 8}, 1},
                          [&](bool ok) { acked = ok; }));
  kernel.run();
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{7, 8}));
  EXPECT_TRUE(acked);
  EXPECT_EQ(client.transport_name(), "mqtt:dev-1");
  EXPECT_EQ(client.transport_stats().frames_sent, 1u);
  EXPECT_EQ(client.transport_stats().bytes_sent, 2u);
  // The broker saw the frame arrive.
  EXPECT_EQ(broker.transport_stats().frames_delivered, 1u);
}

TEST_F(MqttFixture, DisconnectedClientRefusesFrame) {
  MqttClient client{kernel, "dev-1"};
  bool acked = true;
  EXPECT_FALSE(client.send(Frame{"dev-1", "t", {1}, 0},
                           [&](bool ok) { acked = ok; }));
  EXPECT_FALSE(acked);
  EXPECT_EQ(client.transport_stats().frames_dropped, 1u);
}

TEST_F(MqttFixture, BrokerSendsFrameToSubscribedClient) {
  MqttClient client{kernel, "dev-1"};
  auto [up, down] = channels();
  client.connect(broker, up, down, [](bool) {});
  kernel.run();
  std::vector<std::uint8_t> seen;
  client.subscribe("emon/ctrl/dev-1",
                   [&](const MqttMessage& m) { seen = m.payload; });
  kernel.run();
  EXPECT_TRUE(broker.send(Frame{"agg-1", "emon/ctrl/dev-1", {4, 5, 6}, 0}));
  kernel.run();
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{4, 5, 6}));
  EXPECT_EQ(broker.transport_name(), "mqtt-broker:agg-1");
  EXPECT_EQ(client.transport_stats().frames_delivered, 1u);
  EXPECT_EQ(client.transport_stats().bytes_delivered, 3u);
}

// ---------------------------------------------------------------------------
// Time sync
// ---------------------------------------------------------------------------

TEST(TimeSync, BeaconCorrectsDrift) {
  sim::Kernel k;
  hw::Ds3231 rtc{0x68, {}, [&k] { return k.now(); }, util::Rng{21}};
  TimeSyncAgent agent{rtc};
  k.run_until(SimTime{seconds(3600).ns()});  // 1 h of free-running drift
  const double drift_before = std::fabs(rtc.error().to_seconds());
  agent.on_beacon(k.now());
  const double drift_after = std::fabs(rtc.error().to_seconds());
  EXPECT_LT(drift_after, 0.005);  // bounded by assumed-propagation error
  EXPECT_GE(agent.beacons_received(), 1u);
  if (rtc.true_drift_ppm() != 0.0) {
    EXPECT_LT(drift_after, drift_before + 1e-12);
  }
}

TEST(TimeSync, PeriodicBeaconsBoundError) {
  sim::Kernel k;
  hw::Ds3231 rtc{0x68, {}, [&k] { return k.now(); }, util::Rng{22}};
  TimeSyncAgent agent{rtc};
  // Beacon every 10 s for 10 min.
  for (int i = 0; i < 60; ++i) {
    k.run_until(SimTime{seconds(10 * (i + 1)).ns()});
    agent.on_beacon(k.now());
  }
  // Residual error stays within assumed propagation + drift over 10 s.
  EXPECT_LT(std::fabs(rtc.error().to_seconds()), 0.0025);
  EXPECT_EQ(agent.beacons_received(), 60u);
}

}  // namespace
}  // namespace emon::net
