// Whole-system integration tests: figure-level invariants, seed
// reproducibility, larger topologies and end-to-end audit paths.

#include <gtest/gtest.h>

#include <cmath>

#include "core/mobility.hpp"
#include "core/scenario.hpp"

namespace emon::core {
namespace {

using sim::seconds;
using sim::SimTime;

// ---------------------------------------------------------------------------
// Figure 5 invariant: decentralized vs centralized measurement gap
// ---------------------------------------------------------------------------

TEST(Figure5, AggregatorReadsHigherThanDeviceSumWithinBand) {
  Testbed bed{FleetBuilder{}.name("fig5").networks(1, 2).seed(11).spec()};
  bed.start();
  bed.run_for(seconds(80));

  // Compare per-10s bins after a 20 s warm-up, like the paper's bar chart.
  const auto& trace = bed.trace();
  int checked = 0;
  for (int bin = 2; bin < 8; ++bin) {
    const SimTime from{seconds(bin * 10).ns()};
    const SimTime to{seconds((bin + 1) * 10).ns()};
    const double feeder = trace.mean_in("feeder.agg-1", from, to);
    double device_sum = 0.0;
    for (const char* dev : {"dev-1", "dev-2"}) {
      device_sum +=
          trace.mean_in(std::string("device.") + dev + ".current_ma", from, to);
    }
    ASSERT_GT(device_sum, 0.0);
    const double gap = (feeder - device_sum) / device_sum;
    EXPECT_GT(gap, 0.005) << "bin " << bin;
    EXPECT_LT(gap, 0.085) << "bin " << bin;
    ++checked;
  }
  EXPECT_EQ(checked, 6);
}

// ---------------------------------------------------------------------------
// Figure 6 invariant: the mobility timeline
// ---------------------------------------------------------------------------

TEST(Figure6, ReportedTraceShowsIdleGapThenBackfill) {
  Testbed bed{paper_figure4(21)};
  bed.start();
  bed.run_for(seconds(30));
  auto& dev = bed.device(0);
  ASSERT_EQ(dev.state(), DeviceState::kReporting);

  const SimTime depart{seconds(30).ns()};
  const sim::Duration transit = seconds(12);
  dev.move_to(bed.network_name(1),
              net::Position{bed.network_position(1).x + 2.0, 0.0}, transit);
  bed.run_for(seconds(40));

  // The master's view of the device (what Figure 6 plots): measurement
  // timestamps never cover the transit window...
  const auto& reported = bed.trace().series("reported.agg-1.dev-1");
  const SimTime replug = depart + transit;
  for (const auto& point : reported) {
    const bool in_transit = point.time > depart && point.time < replug;
    EXPECT_FALSE(in_transit && point.value > 1.0)
        << "consumption reported during transit at t="
        << point.time.to_seconds();
  }
  // ...but measurements DO cover the handshake window (locally stored and
  // flushed after the temporary membership, §III-B).
  const auto& handshakes = dev.handshakes();
  ASSERT_EQ(handshakes.size(), 2u);
  const SimTime hs_end = handshakes[1].completed_at;
  int covered = 0;
  for (const auto& point : reported) {
    if (point.time >= replug && point.time < hs_end && point.value > 1.0) {
      ++covered;
    }
  }
  // ~6 s handshake at 10 Hz ~= 60 buffered records backfilled.
  EXPECT_GT(covered, 40);

  // Arrival times: the backfilled records arrive only after the handshake.
  const auto& arrival = bed.trace().series("arrival.agg-1.dev-1");
  for (const auto& point : arrival) {
    EXPECT_FALSE(point.time > depart && point.time < hs_end &&
                 point.value > 1.0)
        << "data arrived at the master before the temporary membership";
  }
}

// ---------------------------------------------------------------------------
// Reproducibility
// ---------------------------------------------------------------------------

TEST(Reproducibility, SameSeedSameOutcome) {
  auto run = [](std::uint64_t seed) {
    Testbed bed{paper_figure4(seed)};
    bed.start();
    bed.run_for(seconds(25));
    std::ostringstream fingerprint;
    for (std::size_t i = 0; i < bed.device_count(); ++i) {
      const auto& s = bed.device(i).stats();
      fingerprint << s.samples << ':' << s.reports_acked << ':'
                  << util::as_milliwatt_hours(
                         bed.device(i).meter().total_energy())
                  << ';';
    }
    fingerprint << bed.chain().ledger().size() << ';'
                << chain::to_hex(bed.chain().ledger().tip_hash());
    return fingerprint.str();
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// ---------------------------------------------------------------------------
// Scale
// ---------------------------------------------------------------------------

TEST(Scale, FourNetworksTwelveDevices) {
  Testbed bed{FleetBuilder{}
                  .name("four_by_three")
                  .networks(4, 3)
                  .spacing_m(150.0)
                  .seed(31)
                  .spec()};
  bed.start();
  bed.run_for(seconds(40));
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    EXPECT_EQ(bed.device(i).state(), DeviceState::kReporting)
        << bed.device(i).id();
  }
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(bed.aggregator(n).members().size(), 3u);
  }
  EXPECT_TRUE(bed.chain().validate().ok);
  EXPECT_GT(bed.chain().ledger().record_count(), 2000u);
}

TEST(Scale, RoamAcrossMultiHopBackhaul) {
  // A wan-1 device roams to wan-3; verification and roam records must
  // traverse an intermediate aggregator.  Four networks on a ring:
  // agg-1 and agg-3 have no direct link, so the agg-3 -> agg-1 path is
  // genuinely two hops (via agg-2 or agg-4).
  Testbed bed{FleetBuilder{}
                  .name("multi_hop")
                  .networks(4, 1)
                  .spacing_m(150.0)
                  .mesh(MeshTopology::kRing)
                  .seed(33)
                  .spec()};
  ASSERT_FALSE(bed.backhaul().route("agg-1", "agg-3")->size() < 3);
  bed.start();
  bed.run_for(seconds(20));
  auto& dev = bed.device(0);
  ASSERT_EQ(dev.state(), DeviceState::kReporting);
  dev.move_to(bed.network_name(2),
              net::Position{bed.network_position(2).x + 2.0, 0.0},
              seconds(10));
  bed.run_for(seconds(40));
  EXPECT_EQ(dev.membership(), MembershipKind::kTemporary);
  EXPECT_EQ(dev.master_addr(), "agg-1");
  EXPECT_GT(bed.aggregator(0).stats().roam_records_received, 50u);
}

// ---------------------------------------------------------------------------
// Audit: chain replay equals live billing
// ---------------------------------------------------------------------------

TEST(Audit, LedgerReplayMatchesLiveBilling) {
  Testbed bed{paper_figure4(51)};
  bed.start();
  // Past the t=40 block boundary by more than the deferred chain-commit
  // latency, so the final block is committed before the audit replay.
  bed.run_for(seconds(40) + sim::milliseconds(100));

  // Replay the shared chain: per-device energy must match the live
  // billing at the respective home aggregators.
  BillingService audit{"wan-1", Tariff{}};
  audit.ingest_ledger(bed.chain().ledger());
  for (std::size_t i = 0; i < 2; ++i) {  // wan-1 devices
    const DeviceId id = "dev-" + std::to_string(i + 1);
    const auto live = bed.aggregator(0).billing().invoice_for(id);
    const auto replay = audit.invoice_for(id);
    EXPECT_NEAR(replay.total_energy_mwh, live.total_energy_mwh,
                0.02 * live.total_energy_mwh + 0.02)
        << id;
  }
}

TEST(Audit, TamperedChainFailsAudit) {
  Testbed bed{FleetBuilder{}.name("tamper_audit").networks(1, 2).seed(52).spec()};
  bed.start();
  bed.run_for(seconds(30));
  ASSERT_TRUE(bed.chain().validate().ok);
  // An insider rewrites one consumption record in the stored chain.
  auto& blocks = bed.chain().ledger().mutable_blocks_for_tampering();
  ASSERT_GT(blocks.size(), 2u);
  blocks[1].records[0][8] ^= 0xff;
  const auto result = bed.chain().validate();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.bad_index, 1u);
}

// ---------------------------------------------------------------------------
// Robustness
// ---------------------------------------------------------------------------

TEST(Robustness, LossyWifiStillDeliversEverything) {
  ScenarioSpec spec =
      FleetBuilder{}.name("lossy_wifi").networks(1, 2).seed(61).spec();
  spec.sys.wifi.link.loss_probability = 0.05;  // 5 % datagram loss
  Testbed bed{std::move(spec)};
  bed.start();
  bed.run_for(seconds(40));
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    auto& dev = bed.device(i);
    EXPECT_EQ(dev.state(), DeviceState::kReporting) << dev.id();
    // QoS 1 retransmissions hide the loss from the application.
    EXPECT_GT(dev.stats().reports_acked, 150u);
  }
  // Retransmissions happened but no duplicates were double-counted.
  const auto& agg = bed.aggregator(0);
  std::uint64_t sampled = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    sampled += bed.device(i).stats().samples;
  }
  EXPECT_LE(agg.stats().records_accepted, sampled);
}

TEST(Robustness, LongOfflineOverflowsGracefully) {
  ScenarioSpec spec =
      FleetBuilder{}.name("long_offline").networks(2, 1).seed(62).spec();
  spec.sys.device.local_store_capacity = 50;  // tiny store
  Testbed bed{std::move(spec)};
  bed.start();
  bed.run_for(seconds(20));
  auto& dev = bed.device(0);
  // Strand the device: plugged at home but every AP disappears (so the
  // rescan loop cannot fall back to the neighbouring WAN either).
  bed.medium().remove_access_point("wan-1");
  bed.medium().remove_access_point("wan-2");
  // Force the link down via an explicit unplug/replug cycle at home.
  dev.unplug();
  dev.plug_into("wan-1");
  bed.run_for(seconds(30));  // scanning forever, buffering at 10 Hz
  EXPECT_EQ(dev.local_store().size(), 50u);   // capacity clamp
  EXPECT_GT(dev.local_store().dropped(), 100u);  // counted, not crashed
  EXPECT_GT(dev.stats().scans, 2u);  // kept rescanning (§III-B)
}

}  // namespace
}  // namespace emon::core
