// Scenario-engine tests: FleetBuilder/ScenarioSpec shapes, canned
// scenarios, paper-testbed parity, O(1) wiring registries, generated churn,
// fault injection, and whole-run determinism (same spec + seed ==> same
// trace digest).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/scenario.hpp"

namespace emon::core {
namespace {

using sim::seconds;
using sim::SimTime;

// ---------------------------------------------------------------------------
// Spec / builder shapes
// ---------------------------------------------------------------------------

TEST(FleetBuilder, AssemblesSpecShape) {
  const ScenarioSpec spec = FleetBuilder{}
                                .name("shape")
                                .networks(3, 2, LoadArchetype::kThermostat)
                                .population(1, LoadArchetype::kEvCharge)
                                .spacing_m(250.0)
                                .mesh(MeshTopology::kStar)
                                .seed(123)
                                .spec();
  EXPECT_EQ(spec.name, "shape");
  EXPECT_EQ(spec.sys.seed, 123u);
  EXPECT_EQ(spec.networks.size(), 3u);
  EXPECT_EQ(spec.device_count(), 9u);
  EXPECT_EQ(spec.max_devices_per_network(), 3u);
  EXPECT_EQ(spec.mesh, MeshTopology::kStar);
  for (const auto& net : spec.networks) {
    ASSERT_EQ(net.populations.size(), 2u);
    EXPECT_EQ(net.populations[0].archetype, LoadArchetype::kThermostat);
    EXPECT_EQ(net.populations[1].archetype, LoadArchetype::kEvCharge);
  }
}

TEST(FleetBuilder, CannedScenariosResolveByName) {
  const auto names = canned_scenario_names();
  EXPECT_EQ(names.size(), 5u);
  for (const auto& name : names) {
    const ScenarioSpec spec = canned_scenario(name, 1);
    EXPECT_EQ(spec.name, name);
    EXPECT_GT(spec.device_count(), 0u) << name;
  }
  EXPECT_THROW((void)canned_scenario("no_such_scenario", 1),
               std::invalid_argument);
}

TEST(FleetBuilder, MetroFleetSplitsDevicesEvenly) {
  const ScenarioSpec spec = metro_fleet(32, 10'000, 1);
  EXPECT_EQ(spec.networks.size(), 32u);
  EXPECT_EQ(spec.device_count(), 10'000u);
  // Every network carries the full archetype mix.
  for (const auto& net : spec.networks) {
    EXPECT_GE(net.device_count(), 10'000u / 32u);
    EXPECT_EQ(net.populations.size(), 5u);
  }
}

TEST(FleetBuilder, ArchetypeLoadsAreDeterministicAndFinite) {
  const util::SeedSequence seeds{99};
  for (const LoadArchetype archetype :
       {LoadArchetype::kDutyCycle, LoadArchetype::kBursty,
        LoadArchetype::kEvCharge, LoadArchetype::kThermostat,
        LoadArchetype::kIdleHeavy}) {
    const auto load = make_archetype_load(archetype, "dev-1", 0, seeds);
    const auto load2 = make_archetype_load(archetype, "dev-1", 0, seeds);
    ASSERT_NE(load, nullptr) << to_string(archetype);
    for (int s = 0; s < 50; ++s) {
      const SimTime t{seconds(s).ns()};
      const double ma = util::as_milliamps(load->current_at(t));
      EXPECT_TRUE(std::isfinite(ma)) << to_string(archetype);
      EXPECT_GE(ma, 0.0) << to_string(archetype);
      // Same archetype + id + index + seeds => identical waveform.
      EXPECT_DOUBLE_EQ(ma, util::as_milliamps(load2->current_at(t)))
          << to_string(archetype);
    }
  }
}

TEST(FleetBuilder, TdmaAutoSizeWidensOnlyWhenNeeded) {
  ScenarioSpec big =
      FleetBuilder{}.networks(1, 50).auto_size_tdma().seed(1).spec();
  Testbed bed{std::move(big)};
  const auto& tdma = bed.spec().sys.aggregator.tdma;
  EXPECT_GE(static_cast<std::size_t>(tdma.superframe / tdma.slot_width), 50u);

  // A population that fits leaves the configured schedule untouched.
  ScenarioSpec small =
      FleetBuilder{}.networks(1, 2).auto_size_tdma().seed(1).spec();
  const auto before = small.sys.aggregator.tdma.slot_width;
  Testbed small_bed{std::move(small)};
  EXPECT_EQ(small_bed.spec().sys.aggregator.tdma.slot_width, before);
}

// ---------------------------------------------------------------------------
// Paper-testbed parity + registries
// ---------------------------------------------------------------------------

TEST(FleetTestbed, PaperFigure4ReproducesSeedShape) {
  Testbed bed{paper_figure4(42)};
  EXPECT_EQ(bed.network_count(), 2u);
  EXPECT_EQ(bed.device_count(), 4u);
  EXPECT_EQ(bed.network_name(0), "wan-1");
  EXPECT_EQ(bed.network_name(1), "wan-2");
  EXPECT_DOUBLE_EQ(bed.network_position(1).x, 120.0);
  EXPECT_EQ(bed.device(0).id(), "dev-1");
  EXPECT_EQ(bed.device(3).id(), "dev-4");
  EXPECT_EQ(bed.home_of(0), 0u);
  EXPECT_EQ(bed.home_of(2), 1u);
  EXPECT_EQ(bed.archetype_of(0), LoadArchetype::kDutyCycle);
  // The seed layout: single row, 1.5 m apart, starting 1.5 m from the AP.
  EXPECT_DOUBLE_EQ(bed.device_position(0, 0).x, 1.5);
  EXPECT_DOUBLE_EQ(bed.device_position(0, 1).x, 3.0);
  EXPECT_DOUBLE_EQ(bed.device_position(0, 1).y, 0.0);

  bed.start();
  bed.run_for(seconds(10));
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    EXPECT_EQ(bed.device(i).state(), DeviceState::kReporting)
        << bed.device(i).id();
    EXPECT_EQ(bed.device(i).membership(), MembershipKind::kHome);
  }
}

TEST(FleetTestbed, RegistriesResolveAcrossManyNetworks) {
  // 12 networks: with the O(n)-scan resolvers this shape was the worst
  // case; the hash registries must wire every device to its own WAN.
  Testbed bed{FleetBuilder{}
                  .name("wide")
                  .networks(12, 1)
                  .spacing_m(300.0)
                  .seed(17)
                  .spec()};
  bed.start();
  bed.run_for(seconds(12));
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    EXPECT_EQ(bed.device(i).state(), DeviceState::kReporting)
        << bed.device(i).id();
    EXPECT_EQ(bed.device(i).master_addr(), bed.aggregator(i).id());
    EXPECT_EQ(bed.aggregator(i).members().size(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Generated churn
// ---------------------------------------------------------------------------

TEST(FleetChurn, GeneratedPlansMoveEveryRoamer) {
  ChurnSpec churn;
  churn.roamer_fraction = 1.0;
  churn.trips_per_roamer = 1;
  churn.first_departure = seconds(15);
  churn.dwell_min = seconds(1);
  churn.dwell_max = seconds(2);
  churn.transit = seconds(3);
  Testbed bed{FleetBuilder{}
                  .name("churny")
                  .networks(3, 2)
                  .spacing_m(150.0)
                  .churn(churn)
                  .seed(77)
                  .spec()};
  bed.start();
  bed.run_for(seconds(45));
  std::size_t roamed = 0;
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    const auto& dev = bed.device(i);
    EXPECT_EQ(dev.state(), DeviceState::kReporting) << dev.id();
    if (dev.handshakes().size() >= 2) {
      ++roamed;
      EXPECT_NE(dev.plugged_network(),
                bed.network_name(bed.home_of(i)))
          << dev.id();
    }
  }
  // Every device roams once under fraction 1.0.
  EXPECT_EQ(roamed, bed.device_count());
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(FleetFaults, ApOutageDropsLinksAndRestores) {
  Testbed bed{FleetBuilder{}
                  .name("outage")
                  .networks(1, 2)
                  .ap_outage(0, SimTime{seconds(15).ns()}, seconds(10))
                  .seed(3)
                  .spec()};
  bed.start();
  bed.run_for(seconds(14));
  ASSERT_EQ(bed.device(0).state(), DeviceState::kReporting);
  const auto scans_before = bed.device(0).stats().scans;

  bed.run_for(seconds(6));  // inside the outage window
  EXPECT_EQ(bed.medium().access_point_count(), 0u);
  EXPECT_NE(bed.device(0).state(), DeviceState::kReporting);
  EXPECT_GT(bed.device(0).stats().scans, scans_before);  // rescanning

  bed.run_for(seconds(20));  // outage over at t=25, reacquire
  EXPECT_EQ(bed.medium().access_point_count(), 1u);
  EXPECT_EQ(bed.device(0).state(), DeviceState::kReporting);
  EXPECT_TRUE(bed.trace().has("fault.ap_outage.wan-1"));
}

TEST(FleetFaults, BackhaulPartitionIsolatesAndHeals) {
  Testbed bed{FleetBuilder{}
                  .name("partition")
                  .networks(3, 1)
                  .backhaul_partition(1, SimTime{seconds(5).ns()},
                                      seconds(10))
                  .seed(4)
                  .spec()};
  bed.start();
  bed.run_for(seconds(7));  // inside the partition
  EXPECT_FALSE(bed.backhaul().node_up("agg-2"));
  EXPECT_FALSE(bed.backhaul().route("agg-1", "agg-2").has_value());
  bed.run_for(seconds(10));  // healed at t=15
  EXPECT_TRUE(bed.backhaul().node_up("agg-2"));
  EXPECT_TRUE(bed.backhaul().route("agg-1", "agg-2").has_value());
  EXPECT_TRUE(bed.trace().has("fault.partition.agg-2"));
}

TEST(FleetFaults, TamperBurstFlagsAnomaliesThenClears) {
  Testbed bed{FleetBuilder{}
                  .name("tamper")
                  .networks(1, 3)
                  .tamper_burst(0, SimTime{seconds(30).ns()}, seconds(15),
                                0.3)
                  .seed(13)
                  .spec()};
  bed.start();
  bed.run_for(seconds(60));
  const auto& history = bed.aggregator(0).verification_history();
  ASSERT_FALSE(history.empty());
  std::size_t flagged_in_burst = 0;
  std::size_t flagged_after = 0;
  for (const auto& window : history) {
    const double end_s = window.window_end.to_seconds();
    if (window.anomalous && end_s > 31.0 && end_s <= 45.0) {
      ++flagged_in_burst;
    }
    if (window.anomalous && end_s > 50.0) {
      ++flagged_after;
    }
  }
  EXPECT_GT(flagged_in_burst, 5u);
  EXPECT_EQ(flagged_after, 0u);  // honesty restored after the burst
  EXPECT_TRUE(bed.trace().has("fault.tamper.dev-1"));
}

TEST(FleetFaults, OverlappingWindowsRestoreAtLastEnd) {
  // [10,30) at 0.5 overlapping [20,40) at 0.3: honesty returns only when
  // the later window closes, not when the first one ends.
  Testbed bed{FleetBuilder{}
                  .name("overlap")
                  .networks(1, 2)
                  .tamper_burst(0, SimTime{seconds(10).ns()}, seconds(20),
                                0.5)
                  .tamper_burst(0, SimTime{seconds(20).ns()}, seconds(20),
                                0.3)
                  .seed(8)
                  .spec()};
  bed.start();
  bed.run_for(seconds(35));  // first window over, second still active
  ASSERT_EQ(bed.trace().series("fault.tamper.dev-1").size(), 2u);
  bed.run_for(seconds(10));
  const auto& marks = bed.trace().series("fault.tamper.dev-1");
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_DOUBLE_EQ(marks.back().value, 1.0);
  EXPECT_EQ(marks.back().time.ns(), seconds(40).ns());
}

TEST(FleetFaults, OutOfRangeTargetsThrow) {
  EXPECT_THROW(
      Testbed{FleetBuilder{}
                  .networks(1, 1)
                  .ap_outage(5, SimTime{seconds(1).ns()}, seconds(1))
                  .spec()},
      std::invalid_argument);
  EXPECT_THROW(
      Testbed{FleetBuilder{}
                  .networks(1, 1)
                  .tamper_burst(9, SimTime{seconds(1).ns()}, seconds(1), 0.5)
                  .spec()},
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(FleetDeterminism, SameSpecSameSeedSameTraceDigest) {
  ChurnSpec churn;
  churn.roamer_fraction = 0.5;
  churn.trips_per_roamer = 1;
  churn.first_departure = seconds(12);
  churn.dwell_min = seconds(1);
  churn.dwell_max = seconds(3);
  churn.transit = seconds(4);
  const auto run = [&churn](std::uint64_t seed) {
    Testbed bed{FleetBuilder{}
                    .name("repro")
                    .networks(3, 2)
                    .spacing_m(150.0)
                    .churn(churn)
                    .seed(seed)
                    .spec()};
    bed.start();
    bed.run_for(seconds(40));
    return bed.trace().digest();
  };
  EXPECT_EQ(run(2024), run(2024));
  EXPECT_NE(run(2024), run(2025));
}

// Pins the unordered-container audit in scenario.hpp: the testbed's hash
// maps (wiring registries, churn table, per-shard fault maps) are lookup-
// only, so scrambling their bucket counts — which permutes unordered_map
// iteration order — must not move a single trace event.  The run includes
// churn and an AP outage so every one of the six audited maps is populated
// and exercised while perturbed.
TEST(FleetDeterminism, HashOrderIndependence) {
  ChurnSpec churn;
  churn.roamer_fraction = 0.5;
  churn.trips_per_roamer = 1;
  churn.first_departure = seconds(12);
  churn.dwell_min = seconds(1);
  churn.dwell_max = seconds(3);
  churn.transit = seconds(4);
  const auto run = [&churn](std::size_t extra_buckets) {
    Testbed bed{FleetBuilder{}
                    .name("hash-order")
                    .networks(3, 2)
                    .spacing_m(150.0)
                    .churn(churn)
                    .ap_outage(1, SimTime{seconds(15).ns()}, seconds(5))
                    .seed(2024)
                    .spec()};
    bed.start();
    if (extra_buckets != 0) {
      bed.perturb_hash_order(extra_buckets);
    }
    bed.run_for(seconds(40));
    return bed.trace().digest();
  };
  const auto baseline = run(0);
  EXPECT_EQ(baseline, run(7));
  EXPECT_EQ(baseline, run(97));
}

}  // namespace
}  // namespace emon::core
