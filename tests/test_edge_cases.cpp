// Edge cases and failure injection: lifecycle races, malformed input on
// the wire, and boundary conditions that the happy-path suites don't hit.

#include <gtest/gtest.h>

#include "core/local_store.hpp"
#include "core/protocol.hpp"
#include "core/records.hpp"
#include "core/scenario.hpp"
#include "net/mqtt.hpp"
#include "util/bytes.hpp"

namespace emon::core {
namespace {

using sim::milliseconds;
using sim::seconds;
using sim::SimTime;

ScenarioSpec small_params(std::uint64_t seed) {
  return FleetBuilder{}.name("two_by_one").networks(2, 1).seed(seed).spec();
}

// ---------------------------------------------------------------------------
// Device lifecycle races
// ---------------------------------------------------------------------------

TEST(Lifecycle, UnplugDuringScanIsClean) {
  Testbed bed{small_params(1)};
  bed.start();
  bed.run_for(seconds(1));  // mid-scan (scan takes 3.25 s)
  ASSERT_EQ(bed.device(0).state(), DeviceState::kAcquiring);
  bed.device(0).unplug();
  bed.run_for(seconds(10));
  EXPECT_EQ(bed.device(0).state(), DeviceState::kUnplugged);
  EXPECT_EQ(bed.device(0).stats().reports_sent, 0u);
  // Replug: full fresh handshake works.
  bed.device(0).plug_into("wan-1");
  bed.run_for(seconds(10));
  EXPECT_EQ(bed.device(0).state(), DeviceState::kReporting);
}

TEST(Lifecycle, UnplugDuringSettleIsClean) {
  Testbed bed{small_params(2)};
  bed.start();
  bed.run_for(seconds(5));  // past scan+assoc, inside settle
  bed.device(0).unplug();
  bed.run_for(seconds(5));
  EXPECT_EQ(bed.device(0).state(), DeviceState::kUnplugged);
  bed.device(0).plug_into("wan-1");
  bed.run_for(seconds(10));
  EXPECT_EQ(bed.device(0).state(), DeviceState::kReporting);
}

TEST(Lifecycle, MoveSupersedesMove) {
  Testbed bed{small_params(3)};
  bed.start();
  bed.run_for(seconds(12));
  auto& dev = bed.device(0);
  ASSERT_EQ(dev.state(), DeviceState::kReporting);
  // First move is pre-empted by a second one issued during transit.
  dev.move_to("wan-2", net::Position{122.0, 0.0}, seconds(30));
  bed.run_for(seconds(5));
  dev.move_to("wan-1", net::Position{2.0, 0.0}, seconds(5));
  bed.run_for(seconds(40));
  EXPECT_EQ(dev.plugged_network(), "wan-1");
  EXPECT_EQ(dev.state(), DeviceState::kReporting);
}

TEST(Lifecycle, PlugIntoUnknownNetworkIsHarmless) {
  Testbed bed{small_params(4)};
  bed.device(0).plug_into("wan-99");
  bed.run_for(seconds(5));
  EXPECT_EQ(bed.device(0).state(), DeviceState::kUnplugged);
  EXPECT_EQ(bed.device(0).stats().samples, 0u);
}

TEST(Lifecycle, DoublePlugReplacesCleanly) {
  Testbed bed{small_params(5)};
  bed.device(0).plug_into("wan-1");
  bed.run_for(seconds(2));
  bed.device(0).plug_into("wan-2");  // implicit unplug from wan-1
  EXPECT_FALSE(bed.grid_of(0).is_plugged("dev-1"));
  EXPECT_TRUE(bed.grid_of(1).is_plugged("dev-1"));
  bed.run_for(seconds(12));
  EXPECT_EQ(bed.device(0).plugged_network(), "wan-2");
}

TEST(Lifecycle, UnplugIdempotent) {
  Testbed bed{small_params(6)};
  bed.device(0).unplug();
  bed.device(0).unplug();
  EXPECT_EQ(bed.device(0).state(), DeviceState::kUnplugged);
}

// ---------------------------------------------------------------------------
// Malformed input on the wire
// ---------------------------------------------------------------------------

TEST(Malformed, GarbageOnProtocolTopicsDoesNotCrash) {
  Testbed bed{small_params(7)};
  bed.start();
  bed.run_for(seconds(12));
  auto& broker = bed.aggregator(0).broker();
  const std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe, 0xef};
  broker.publish_from_host(
      net::MqttMessage{"emon/register/evil", garbage, 0, "evil"});
  broker.publish_from_host(
      net::MqttMessage{"emon/report/evil", garbage, 0, "evil"});
  broker.publish_from_host(net::MqttMessage{"emon/beacon", garbage, 0, ""});
  bed.run_for(seconds(2));
  // The honest device keeps reporting.
  EXPECT_EQ(bed.device(0).state(), DeviceState::kReporting);
}

TEST(Malformed, GarbageOnBackhaulDoesNotCrash) {
  Testbed bed{small_params(8)};
  bed.start();
  bed.run_for(seconds(12));
  // Raw garbage (no envelope), a frame with a corrupted body, and frames
  // from the future: typed decode errors at the receiver, never a crash.
  const std::vector<std::uint8_t> garbage{0x00, 0xff, 0x13};
  bed.backhaul().send(net::Frame{"agg-1", "agg-2", garbage, 0});
  bed.backhaul().send(net::Frame{
      "agg-1", "agg-2",
      core::protocol::seal(core::protocol::MsgType::kRoamRecords,
                           std::span<const std::uint8_t>(garbage)),
      0});
  auto future = core::protocol::seal(
      core::protocol::MsgType::kVerifyDeviceQuery,
      std::span<const std::uint8_t>(garbage));
  future[2] = 99;  // version from the future
  bed.backhaul().send(net::Frame{"agg-1", "agg-2", future, 0});
  bed.run_for(seconds(2));
  EXPECT_GE(bed.aggregator(1).stats().malformed_frames, 3u);
  EXPECT_TRUE(bed.chain().validate().ok);
}

TEST(Malformed, ReportForForeignDeviceGetsNack) {
  Testbed bed{small_params(9)};
  bed.start();
  bed.run_for(seconds(12));
  // A syntactically valid report from a device nobody registered.
  Report rogue{"ghost-device", {}};
  const auto nacks_before = bed.aggregator(0).stats().nacks_sent;
  bed.aggregator(0).broker().publish_from_host(net::MqttMessage{
      protocol::topic_report("ghost-device"), protocol::seal(rogue), 0,
      "ghost-device"});
  bed.run_for(seconds(1));
  EXPECT_EQ(bed.aggregator(0).stats().nacks_sent, nacks_before + 1);
}

// ---------------------------------------------------------------------------
// Malformed record batches (deserialize_records hardening)
// ---------------------------------------------------------------------------

ConsumptionRecord sample_record(std::uint64_t seq) {
  ConsumptionRecord r;
  r.device_id = "dev-1";
  r.sequence = seq;
  r.timestamp_ns = 1'000'000;
  r.interval_ns = 100'000'000;
  r.current_ma = 123.4;
  r.bus_voltage_mv = 4998.0;
  r.energy_mwh = 0.017;
  r.network = "wan-1";
  return r;
}

TEST(MalformedBatch, HugeCountPrefixRejectedWithoutAllocation) {
  // A count prefix of ~4 billion with no body behind it must be rejected
  // by the count/remaining-bytes check, not by an OOM inside reserve().
  util::ByteWriter w;
  w.u32(0xffffffff);
  EXPECT_THROW((void)deserialize_records(w.take()), util::DecodeError);
}

TEST(MalformedBatch, CountLargerThanBodyRejected) {
  // A plausible-looking batch whose count claims more records than the
  // bytes that follow could possibly hold.
  auto bytes = serialize_records({sample_record(1), sample_record(2)});
  bytes[0] = 200;  // count 2 -> 200, body unchanged
  EXPECT_THROW((void)deserialize_records(bytes), util::DecodeError);
}

TEST(MalformedBatch, TruncatedMidRecordRejected) {
  auto bytes = serialize_records({sample_record(1), sample_record(2)});
  bytes.resize(bytes.size() - 5);
  EXPECT_THROW((void)deserialize_records(bytes), util::DecodeError);
}

TEST(MalformedBatch, TrailingBytesRejected) {
  auto bytes = serialize_records({sample_record(1)});
  bytes.push_back(0x00);
  EXPECT_THROW((void)deserialize_records(bytes), util::DecodeError);
}

TEST(MalformedBatch, BadMembershipKindRejected) {
  auto bytes = serialize_records({sample_record(1)});
  bytes[bytes.size() - 2] = 7;  // membership byte precedes stored_offline
  EXPECT_THROW((void)deserialize_records(bytes), util::DecodeError);
}

TEST(MalformedBatch, EmptyBatchStillRoundTrips) {
  const auto bytes = serialize_records({});
  EXPECT_TRUE(deserialize_records(bytes).empty());
}

// ---------------------------------------------------------------------------
// Roam denial paths
// ---------------------------------------------------------------------------

TEST(RoamDenial, UnknownMasterVerificationTimesOut) {
  // Device claims a master that is not on the backhaul: the temporary
  // registration must eventually be rejected, not hang.
  Testbed bed{small_params(10)};
  bed.start();
  bed.run_for(seconds(12));
  // Forge a registration with a bogus master directly at agg-2's broker.
  RegisterRequest req{"dev-1", "agg-nonexistent"};
  bed.aggregator(1).broker().publish_from_host(net::MqttMessage{
      protocol::topic_register("dev-1"), protocol::seal(req), 0, "dev-1"});
  bed.run_for(seconds(40));  // expiry sweep runs at 30 s cadence
  EXPECT_EQ(bed.aggregator(1).members().find("dev-1"), nullptr);
  EXPECT_GE(bed.aggregator(1).stats().registrations_rejected, 1u);
}

TEST(RoamDenial, MasterRefusesUnknownDevice) {
  Testbed bed{small_params(11)};
  bed.start();
  bed.run_for(seconds(12));
  // agg-2 asks agg-1 about a device agg-1 has never seen.
  RegisterRequest req{"stranger", "agg-1"};
  bed.aggregator(1).broker().publish_from_host(net::MqttMessage{
      protocol::topic_register("stranger"), protocol::seal(req), 0,
      "stranger"});
  bed.run_for(seconds(5));
  EXPECT_EQ(bed.aggregator(1).members().find("stranger"), nullptr);
  EXPECT_GE(bed.aggregator(1).stats().registrations_rejected, 1u);
  EXPECT_GE(bed.aggregator(0).stats().verify_queries_answered, 1u);
}

// ---------------------------------------------------------------------------
// Kernel re-entrancy
// ---------------------------------------------------------------------------

TEST(KernelEdge, CancelInsideCallback) {
  sim::Kernel kernel;
  sim::EventId later{};
  bool later_ran = false;
  later = kernel.schedule_at(SimTime{20}, [&] { later_ran = true; });
  kernel.schedule_at(SimTime{10}, [&] { kernel.cancel(later); });
  kernel.run();
  EXPECT_FALSE(later_ran);
}

TEST(KernelEdge, ScheduleAtCurrentTimeInsideCallbackRunsAfter) {
  sim::Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(SimTime{10}, [&] {
    order.push_back(1);
    kernel.schedule_at(kernel.now(), [&] { order.push_back(2); });
  });
  kernel.schedule_at(SimTime{10}, [&] { order.push_back(3); });
  kernel.run();
  // FIFO among same-time events: the nested event runs after pre-existing
  // same-time events.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

// ---------------------------------------------------------------------------
// Store boundary conditions
// ---------------------------------------------------------------------------

TEST(StoreEdge, PushFrontBeyondCapacityTrimsOldest) {
  LocalStore store{3};
  std::vector<ConsumptionRecord> batch(5);
  for (std::uint64_t i = 0; i < 5; ++i) {
    batch[i].sequence = i + 1;
  }
  store.push_front(std::move(batch));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.dropped(), 2u);
  const auto out = store.pop_batch(10);
  EXPECT_EQ(out.front().sequence, 3u);  // oldest two trimmed
  EXPECT_EQ(out.back().sequence, 5u);
}

// ---------------------------------------------------------------------------
// Channel boundary conditions
// ---------------------------------------------------------------------------

TEST(ChannelEdge, ReliableSendOnClosedChannelDrops) {
  sim::Kernel kernel;
  net::Channel ch{kernel, {}, util::Rng{1}};
  ch.set_open(false);
  bool delivered = false;
  EXPECT_FALSE(ch.send_reliable(10, [&](std::uint64_t) { delivered = true; }));
  kernel.run();
  EXPECT_FALSE(delivered);
}

TEST(ChannelEdge, ReliableSendSurvivesHeavyLoss) {
  sim::Kernel kernel;
  net::ChannelParams params;
  params.loss_probability = 0.5;
  net::Channel ch{kernel, params, util::Rng{3}};
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(ch.send_reliable(10, [&](std::uint64_t) { ++delivered; }));
  }
  kernel.run();
  EXPECT_EQ(delivered, 200);  // loss becomes delay, never silence
}

TEST(ChannelEdge, ZeroBandwidthSkipsSerializationTerm) {
  sim::Kernel kernel;
  net::ChannelParams params;
  params.base_latency = milliseconds(1);
  params.jitter = sim::Duration{0};
  params.bandwidth_bps = 0.0;
  net::Channel ch{kernel, params, util::Rng{1}};
  EXPECT_EQ(ch.sample_delay(1'000'000'000).ns(), milliseconds(1).ns());
}

// ---------------------------------------------------------------------------
// Aggregator stop/start
// ---------------------------------------------------------------------------

TEST(AggregatorEdge, StopHaltsPeriodicDuties) {
  Testbed bed{small_params(12)};
  bed.start();
  bed.run_for(seconds(15));
  auto& agg = bed.aggregator(0);
  const auto windows = agg.verification_history().size();
  agg.stop();
  bed.run_for(seconds(10));
  EXPECT_EQ(agg.verification_history().size(), windows);
  agg.start();
  bed.run_for(seconds(5));
  EXPECT_GT(agg.verification_history().size(), windows);
}

}  // namespace
}  // namespace emon::core
