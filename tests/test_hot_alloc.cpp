// The EMON_HOT dynamic witness (util/alloc_probe.hpp): after warming the
// store past every capacity-growth knee, a steady-state window of the
// 2000-device serve workload — Tsdb::ingest plus the RollupEngine ingest
// hook, the paths tools/emon_lint.py marks EMON_HOT — must execute ZERO
// operator-new calls.  The static hot-alloc rule proves the bodies
// allocation-free textually; this proves the libraries they lean on
// (vector appends below capacity, try_emplace hits, the dedup ring) stay
// allocation-free too.
//
// Warmup covers every cold branch the hot path legitimately takes:
//   * head-chunk column doublings (16 -> 256 slots covers 160 records),
//   * SequenceDedup ring growth (16 -> 256 by the same point),
//   * first-seen series creation, network-dictionary interning, and the
//     rollup's series/net-pane setup.
// The measurement window then replays 64 more records per device with the
// seal threshold parked far away, so nothing cold can fire.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/records.hpp"
#include "store/rollup.hpp"
#include "store/tsdb.hpp"
#include "util/alloc_probe.hpp"

EMON_DEFINE_ALLOC_COUNTING_NEW

namespace emon::store {
namespace {

constexpr std::size_t kDevices = 2000;
constexpr std::size_t kNetworks = 8;
constexpr std::uint64_t kWarmupPerDevice = 160;
constexpr std::uint64_t kMeasurePerDevice = 64;

core::ConsumptionRecord make_record(std::size_t device, std::uint64_t seq) {
  core::ConsumptionRecord r;
  r.device_id = "dev-" + std::to_string(device);
  r.sequence = seq;
  r.timestamp_ns = static_cast<std::int64_t>(seq) * 1'000'000;  // 1 ms apart
  r.interval_ns = 1'000'000;
  r.current_ma = 100.0 + static_cast<double>((device + seq) % 50);
  r.bus_voltage_mv = 5'000.0;
  r.energy_mwh = 0.125 + static_cast<double>(seq % 7) * 0.001;
  r.network = "net-" + std::to_string(device % kNetworks);
  return r;
}

TEST(HotAllocHarness, SteadyStateIngestAllocatesNothing) {
  TsdbOptions opt;
  opt.shards = 4;
  // Park sealing far beyond the workload so no measurement-window record
  // can trigger a chunk seal (a legitimate cold allocation).
  opt.seal_threshold = 1u << 20;
  Tsdb tsdb(opt);
  RollupEngine rollups(tsdb);
  tsdb.set_ingest_hook(&rollups);

  // One tumbling-hour rollup: every record of the run lands in pane 0, so
  // no window closes (and no ClosedWindow materializes) mid-measurement.
  RollupSpec spec;
  spec.window_ns = 3'600'000'000'000;
  spec.slide_ns = 3'600'000'000'000;
  (void)rollups.register_rollup(spec);

  // Warmup: past every capacity knee (see header comment).
  for (std::uint64_t seq = 1; seq <= kWarmupPerDevice; ++seq) {
    for (std::size_t d = 0; d < kDevices; ++d) {
      ASSERT_TRUE(tsdb.ingest(make_record(d, seq)));
    }
  }

  // Pre-build the measurement records: the harness measures the store's
  // hot path, not the test's own record construction.
  std::vector<core::ConsumptionRecord> window;
  window.reserve(kDevices * kMeasurePerDevice);
  for (std::uint64_t seq = kWarmupPerDevice + 1;
       seq <= kWarmupPerDevice + kMeasurePerDevice; ++seq) {
    for (std::size_t d = 0; d < kDevices; ++d) {
      window.push_back(make_record(d, seq));
    }
  }

  util::AllocProbe::arm();
  std::size_t accepted = 0;
  for (const auto& r : window) {
    accepted += tsdb.ingest(r) ? 1 : 0;
  }
  const std::uint64_t steady_allocs = util::AllocProbe::disarm();

  EXPECT_EQ(accepted, window.size());
  EXPECT_EQ(steady_allocs, 0u)
      << "EMON_HOT steady state performed " << steady_allocs
      << " operator-new calls over " << window.size() << " records";

  // The duplicate-drop path (dedup ring hit) is equally hot and equally
  // allocation-free.
  util::AllocProbe::arm();
  std::size_t dropped = 0;
  for (std::size_t d = 0; d < kDevices; ++d) {
    dropped += tsdb.ingest(window[d]) ? 0 : 1;
  }
  const std::uint64_t dup_allocs = util::AllocProbe::disarm();
  EXPECT_EQ(dropped, kDevices);
  EXPECT_EQ(dup_allocs, 0u);

  const TsdbStats stats = tsdb.stats();
  EXPECT_EQ(stats.records_ingested,
            kDevices * (kWarmupPerDevice + kMeasurePerDevice));
  EXPECT_EQ(stats.duplicates_dropped, kDevices);
  EXPECT_EQ(stats.devices, kDevices);

  // Sanity: the probe itself works — an allocation while armed is seen.
  // (A bare new/delete pair can be elided under -O2; a vector's buffer
  // handed to a gtest assertion cannot.)
  util::AllocProbe::arm();
  std::vector<std::uint64_t> canary;
  canary.reserve(1024);
  const std::uint64_t canary_allocs = util::AllocProbe::disarm();
  EXPECT_GE(canary_allocs, 1u);
  EXPECT_EQ(canary.capacity(), 1024u);
}

}  // namespace
}  // namespace emon::store
