// The embedded time-series store (src/store/): segment codec round-trips
// and quantization bounds, typed decode errors on truncated/corrupt bytes,
// SeriesStore FIFO/budget/eviction accounting, and Tsdb query correctness
// against naive references (including the billing-equivalence acceptance
// bound: store totals vs exact accumulation within the documented
// quantization tolerance).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/billing.hpp"
#include "core/local_store.hpp"
#include "core/records.hpp"
#include "store/segment.hpp"
#include "store/series_store.hpp"
#include "store/tsdb.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace emon::store {
namespace {

using core::ConsumptionRecord;
using core::MembershipKind;

/// A realistic 10 Hz stream: jittered timestamps, noisy current around a
/// slow ramp, occasional network changes — the shape the codec must exploit.
std::vector<ConsumptionRecord> synthetic_stream(std::size_t n,
                                                std::uint64_t seed,
                                                std::int64_t t0_ns = 0) {
  util::Rng rng{seed};
  std::vector<ConsumptionRecord> out;
  out.reserve(n);
  std::int64_t t = t0_ns;
  for (std::size_t i = 0; i < n; ++i) {
    t += 100'000'000 + static_cast<std::int64_t>(rng.uniform(-50e3, 50e3));
    ConsumptionRecord r;
    r.device_id = "dev-1";
    r.sequence = i + 1;
    r.timestamp_ns = t;
    r.interval_ns = 100'000'000;
    r.current_ma = 250.0 + 0.05 * static_cast<double>(i) +
                   rng.uniform(-4.0, 4.0);
    r.bus_voltage_mv = 5000.0 + rng.uniform(-8.0, 8.0);
    r.energy_mwh = r.current_ma * 5.0 * (0.1 / 3600.0);
    r.network = i % 97 == 0 ? "wan-2" : "wan-1";
    r.membership =
        i % 97 == 0 ? MembershipKind::kTemporary : MembershipKind::kHome;
    r.stored_offline = i % 5 == 0;
    out.push_back(std::move(r));
  }
  return out;
}

void expect_near_record(const ConsumptionRecord& got,
                        const ConsumptionRecord& want) {
  EXPECT_EQ(got.device_id, want.device_id);
  EXPECT_EQ(got.sequence, want.sequence);
  EXPECT_EQ(got.timestamp_ns, want.timestamp_ns);  // timestamps are exact
  EXPECT_EQ(got.interval_ns, want.interval_ns);
  EXPECT_EQ(got.network, want.network);
  EXPECT_EQ(got.membership, want.membership);
  EXPECT_EQ(got.stored_offline, want.stored_offline);
  EXPECT_NEAR(got.current_ma, want.current_ma, kCurrentToleranceMa);
  EXPECT_NEAR(got.bus_voltage_mv, want.bus_voltage_mv, kVoltageToleranceMv);
  EXPECT_NEAR(got.energy_mwh, want.energy_mwh, kEnergyToleranceMwh);
}

// ---------------------------------------------------------------------------
// Segment codec
// ---------------------------------------------------------------------------

TEST(Segment, RoundTripWithinQuantizationBounds) {
  const auto records = synthetic_stream(300, 7);
  SegmentBuilder builder;
  for (const auto& r : records) {
    builder.append(r);
  }
  const Segment seg = builder.seal();
  ASSERT_EQ(seg.count(), records.size());
  const auto decoded = seg.decode_all();
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    expect_near_record(decoded[i], records[i]);
  }
}

TEST(Segment, ReparseOwnBytesIsIdentical) {
  const auto records = synthetic_stream(100, 11);
  SegmentBuilder builder;
  for (const auto& r : records) {
    builder.append(r);
  }
  const Segment seg = builder.seal();
  auto reparsed = Segment::parse(seg.bytes());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().detail;
  EXPECT_EQ(reparsed.value().count(), seg.count());
  EXPECT_EQ(reparsed.value().summary().energy_q_sum,
            seg.summary().energy_q_sum);
  const auto a = seg.decode_all();
  const auto b = reparsed.value().decode_all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);  // bit-for-bit: both sides decode quantized data
  }
}

TEST(Segment, SummaryMatchesNaiveAggregation) {
  const auto records = synthetic_stream(257, 13);
  SegmentBuilder builder;
  for (const auto& r : records) {
    builder.append(r);
  }
  const SegmentSummary s = builder.summary();
  EXPECT_EQ(s.count, records.size());
  std::int64_t t_min = records[0].timestamp_ns;
  std::int64_t t_max = records[0].timestamp_ns;
  double energy = 0.0;
  std::uint64_t wan1 = 0;
  for (const auto& r : records) {
    t_min = std::min(t_min, r.timestamp_ns);
    t_max = std::max(t_max, r.timestamp_ns);
    energy += r.energy_mwh;
    wan1 += r.network == "wan-1" ? 1 : 0;
  }
  EXPECT_EQ(s.t_min_ns, t_min);
  EXPECT_EQ(s.t_max_ns, t_max);
  EXPECT_EQ(s.seq_min, 1u);
  EXPECT_EQ(s.seq_max, records.size());
  EXPECT_NEAR(s.energy_mwh(), energy,
              static_cast<double>(s.count) * kEnergyToleranceMwh);
  ASSERT_EQ(s.networks.size(), 2u);
  const auto& wan1_sub = s.networks[0].network == "wan-1" ? s.networks[0]
                                                          : s.networks[1];
  EXPECT_EQ(wan1_sub.records, wan1);
}

TEST(Segment, CompressesWellBelowWireFormat) {
  const auto records = synthetic_stream(256, 17);
  SegmentBuilder builder;
  std::size_t wire_bytes = 0;
  for (const auto& r : records) {
    wire_bytes += core::serialize_record(r).size();
    builder.append(r);
  }
  const Segment seg = builder.seal();
  // The acceptance bar for the bench workload is 3x; the codec clears it
  // with margin on a realistic stream.
  EXPECT_LT(seg.byte_size() * 3, wire_bytes)
      << seg.byte_size() << " vs " << wire_bytes;
}

TEST(Segment, LazyCursorStreamsInOrder) {
  const auto records = synthetic_stream(50, 19);
  SegmentBuilder builder;
  for (const auto& r : records) {
    builder.append(r);
  }
  const Segment seg = builder.seal();
  SegmentCursor cur = seg.cursor();
  std::size_t i = 0;
  while (auto rec = cur.next()) {
    EXPECT_EQ(rec->sequence, records[i].sequence);
    ++i;
  }
  EXPECT_EQ(i, records.size());
  EXPECT_TRUE(cur.done());
  EXPECT_FALSE(cur.error().has_value());
}

// ---------------------------------------------------------------------------
// Typed decode errors
// ---------------------------------------------------------------------------

TEST(SegmentErrors, GarbageIsBadMagic) {
  const std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe, 0xef, 0x00};
  const auto res = Segment::parse(garbage);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().fault, SegmentFault::kBadMagic);
}

TEST(SegmentErrors, EmptyAndTinyInputsAreTruncated) {
  EXPECT_EQ(Segment::parse({}).error().fault, SegmentFault::kTruncated);
  const std::vector<std::uint8_t> two{0x45, 0x53};
  EXPECT_EQ(Segment::parse(two).error().fault, SegmentFault::kTruncated);
}

TEST(SegmentErrors, EveryTruncationPointIsTyped) {
  const auto records = synthetic_stream(40, 23);
  SegmentBuilder builder;
  for (const auto& r : records) {
    builder.append(r);
  }
  const Segment seg = builder.seal();
  const auto& bytes = seg.bytes();
  // Chop the sealed blob at every length: never a crash, never success,
  // always a typed fault.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto res = Segment::parse(
        std::span<const std::uint8_t>(bytes.data(), len));
    ASSERT_FALSE(res.ok()) << "parse succeeded at " << len << "/"
                           << bytes.size();
    ASSERT_TRUE(res.error().fault == SegmentFault::kTruncated ||
                res.error().fault == SegmentFault::kCorrupt)
        << "unexpected fault at " << len;
  }
}

TEST(SegmentErrors, FutureVersionRejected) {
  const auto records = synthetic_stream(5, 29);
  SegmentBuilder builder;
  for (const auto& r : records) {
    builder.append(r);
  }
  auto bytes = builder.seal().bytes();
  bytes[4] = 99;  // version byte follows the u32 magic
  const auto res = Segment::parse(bytes);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().fault, SegmentFault::kBadVersion);
}

TEST(SegmentErrors, TrailingBytesAreCorrupt) {
  const auto records = synthetic_stream(5, 31);
  SegmentBuilder builder;
  for (const auto& r : records) {
    builder.append(r);
  }
  auto bytes = builder.seal().bytes();
  bytes.push_back(0x00);
  const auto res = Segment::parse(bytes);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().fault, SegmentFault::kCorrupt);
}

TEST(SegmentErrors, ExhaustedColumnSurfacesCursorError) {
  // Hand-assemble a structurally valid segment whose summary claims three
  // records but whose value columns are empty: parse() accepts the frame,
  // the lazy cursor must stop with a typed error instead of inventing data.
  util::ByteWriter w;
  w.u32(0x31475345);  // "ESG1"
  w.u8(1);
  w.str("dev-evil");
  w.varint(3);    // count
  w.zigzag(0);    // t_min
  w.zigzag(200);  // t_max
  w.varint(1);    // seq_min
  w.varint(3);    // seq_max
  w.zigzag(0);    // current q min
  w.zigzag(0);    // current q max
  w.zigzag(0);    // current q sum
  w.zigzag(0);    // voltage q min
  w.zigzag(0);    // voltage q max
  w.zigzag(0);    // energy q sum
  w.varint(1);    // dictionary entries
  w.str("wan-1");
  w.varint(3);  // dictionary record subtotal matches count
  w.zigzag(0);
  w.u8(8);  // column count
  for (int c = 0; c < 7; ++c) {
    w.u32(0);  // every varint column empty
  }
  w.u32(1);  // flags column: fixed width (3+3)/4 = 1 byte, must be present
  w.u8(0);
  const auto res = Segment::parse(w.bytes());
  ASSERT_TRUE(res.ok()) << res.error().detail;
  SegmentCursor cur = res.value().cursor();
  EXPECT_FALSE(cur.next().has_value());
  ASSERT_TRUE(cur.error().has_value());
  EXPECT_EQ(cur.error()->fault, SegmentFault::kCorrupt);
  EXPECT_EQ(cur.decoded(), 0u);
}

TEST(SegmentErrors, AdversarialHugeCountRejectedAtParse) {
  // A summary count near UINT64_MAX must fail the count-vs-remaining-bytes
  // check (not overflow the flags-size arithmetic or reach a giant
  // reserve() in decode_all).
  util::ByteWriter w;
  w.u32(0x31475345);
  w.u8(1);
  w.str("dev-evil");
  w.varint(0xfffffffffffffffdULL);  // count
  for (int i = 0; i < 10; ++i) {
    w.zigzag(0);  // rest of the summary block
  }
  const auto res = Segment::parse(w.bytes());
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().fault, SegmentFault::kCorrupt);
}

TEST(SegmentErrors, DictionaryCountMismatchIsCorrupt) {
  const auto records = synthetic_stream(8, 37);
  SegmentBuilder builder;
  for (const auto& r : records) {
    builder.append(r);
  }
  auto bytes = builder.seal().bytes();
  // All records are small-count; the count varint sits right after the
  // device string ("dev-1" -> offset 4+1+4+5 = 14).  Bump it so the
  // dictionary subtotals no longer add up.
  ASSERT_EQ(bytes[14], 8);
  bytes[14] = 9;
  const auto res = Segment::parse(bytes);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().fault, SegmentFault::kCorrupt);
}

// ---------------------------------------------------------------------------
// SeriesStore (device offline buffer)
// ---------------------------------------------------------------------------

SeriesStoreOptions small_options() {
  SeriesStoreOptions opt;
  opt.byte_budget = 64 * 1024;
  opt.max_records = 0;
  opt.seal_threshold = 16;
  return opt;
}

TEST(SeriesStore, FifoAcrossSealBoundaries) {
  SeriesStore store{small_options()};
  const auto records = synthetic_stream(50, 41);  // seals 3 segments + head
  for (const auto& r : records) {
    EXPECT_TRUE(store.push(r));
  }
  EXPECT_EQ(store.size(), 50u);
  EXPECT_GE(store.segments_sealed(), 3u);
  const auto first = store.pop_batch(20);
  ASSERT_EQ(first.size(), 20u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].sequence, records[i].sequence);
    expect_near_record(first[i], records[i]);
  }
  const auto rest = store.pop_batch(1000);
  ASSERT_EQ(rest.size(), 30u);
  EXPECT_EQ(rest.front().sequence, records[20].sequence);
  EXPECT_EQ(rest.back().sequence, records[49].sequence);
  EXPECT_TRUE(store.empty());
}

TEST(SeriesStore, PushFrontPreservesOrder) {
  SeriesStore store{small_options()};
  const auto records = synthetic_stream(10, 43);
  for (const auto& r : records) {
    store.push(r);
  }
  auto batch = store.pop_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  store.push_front(std::move(batch));  // failed transmit, re-buffer
  const auto out = store.pop_batch(100);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].sequence, records[i].sequence);
  }
}

TEST(SeriesStore, RecordCapMatchesLocalStoreSemantics) {
  SeriesStoreOptions opt;
  opt.byte_budget = 0;
  opt.max_records = 50;
  opt.seal_threshold = 16;
  SeriesStore store{opt};
  const auto records = synthetic_stream(173, 47);
  std::uint64_t kept_all = 0;
  for (const auto& r : records) {
    kept_all += store.push(r) ? 1 : 0;
  }
  EXPECT_EQ(store.size(), 50u);          // exact clamp
  EXPECT_EQ(store.dropped(), 123u);      // everything else counted
  EXPECT_EQ(kept_all, 50u);
  EXPECT_EQ(store.peak_size(), 50u);
  // The survivors are the *newest* 50, still in order.
  const auto out = store.pop_batch(1000);
  ASSERT_EQ(out.size(), 50u);
  EXPECT_EQ(out.front().sequence, records[123].sequence);
  EXPECT_EQ(out.back().sequence, records.back().sequence);
}

TEST(SeriesStore, ByteBudgetEvictsOldestSegmentsWithAccounting) {
  SeriesStoreOptions opt;
  opt.byte_budget = 4096;  // an open head plus a few sealed segments
  opt.max_records = 0;
  opt.seal_threshold = 32;
  SeriesStore store{opt};
  const auto records = synthetic_stream(2000, 53);
  for (const auto& r : records) {
    store.push(r);
  }
  EXPECT_LE(store.bytes_used(), opt.byte_budget);
  EXPECT_GT(store.dropped(), 0u);
  EXPECT_EQ(store.size() + store.dropped(), records.size());
  // Retained records are a contiguous newest-suffix of the stream.
  const auto out = store.pop_batch(100000);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().sequence, records.back().sequence);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[i].sequence, out[i - 1].sequence + 1);
  }
  // The compressed budget holds far more than the same bytes of wire-format
  // records (4096 B / ~68 B-per-record ≈ 60 uncompressed).
  EXPECT_GT(out.size(), 60u);
}

TEST(SeriesStore, DropAccountingConservesAcrossEvictionShapes) {
  // Regression for the whole-segment eviction accounting: a record must be
  // counted in dropped() exactly once, whether it falls to a front-staging
  // drop, a wholesale segment eviction (summary-count path), or the
  // stage-and-drop fallback that decodes the last remaining segment.  The
  // sequence below forces all three branches while checking the
  // conservation contract after every operation:
  //     pushed == size() + popped + dropped()
  SeriesStoreOptions opt;
  opt.byte_budget = 900;  // roughly two sealed segments plus staging slack
  opt.max_records = 0;
  opt.seal_threshold = 16;
  SeriesStore store{opt};
  const auto records = synthetic_stream(600, 61);
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  const auto conserved = [&] {
    return pushed == store.size() + popped + store.dropped();
  };

  // Phase 1: sustained offline buffering — seals segments and forces
  // wholesale evictions of the oldest ones.
  for (std::size_t i = 0; i < 400; ++i) {
    store.push(records[i]);
    ++pushed;
    ASSERT_TRUE(conserved()) << "after push " << i;
  }
  EXPECT_GT(store.dropped(), 0u);
  EXPECT_GT(store.segments_sealed(), 2u);

  // Phase 2: partial flush + failed-transmit re-buffering (stages a sealed
  // segment into the front, then pushes part of it back).
  auto batch = store.pop_batch(24);
  popped += batch.size();
  ASSERT_TRUE(conserved());
  std::vector<ConsumptionRecord> back(batch.begin() + 8, batch.end());
  popped -= back.size();
  store.push_front(std::move(back));
  ASSERT_TRUE(conserved());

  // Phase 3: more pressure with the front non-empty — drops come from the
  // staged front while sealed segments are still evicted wholesale behind.
  for (std::size_t i = 400; i < records.size(); ++i) {
    store.push(records[i]);
    ++pushed;
    ASSERT_TRUE(conserved()) << "after push " << i;
  }

  // Phase 4: drain completely; every byte of accounting must return to
  // zero and the ledger must balance exactly.
  while (!store.empty()) {
    popped += store.pop_batch(37).size();
    ASSERT_TRUE(conserved());
  }
  EXPECT_EQ(store.bytes_used(), 0u);
  EXPECT_EQ(pushed, popped + store.dropped());
}

TEST(SeriesStore, StageAndDropOfLastSegmentCountsOnce) {
  // Budget below a single sealed segment with an empty head: eviction must
  // take the stage-and-drop path (decode the only segment, drop records
  // one by one, keep the newest) and count each record exactly once.
  SeriesStoreOptions opt;
  opt.byte_budget = 128;
  opt.max_records = 0;
  opt.seal_threshold = 8;
  SeriesStore store{opt};
  const auto records = synthetic_stream(8, 67);
  std::uint64_t pushed = 0;
  for (const auto& r : records) {
    store.push(r);
    ++pushed;
    ASSERT_EQ(pushed, store.size() + store.dropped());
  }
  // The 8th push sealed the head into the only segment and blew the
  // budget: survivors + dropped must still cover every push, and the
  // newest record survives.
  const auto out = store.pop_batch(100);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().sequence, records.back().sequence);
  EXPECT_EQ(pushed, out.size() + store.dropped());
}

TEST(SeriesStore, ConservationHoldsUnderRandomizedWorkload) {
  // Distilled fuzz: random push bursts, partial pops, failed-transmit
  // push_front cycles over tight budgets.  Conservation and drain-to-zero
  // byte accounting must hold for every seed.
  util::Rng rng{0xc0ffee};
  for (int trial = 0; trial < 40; ++trial) {
    SeriesStoreOptions opt;
    opt.byte_budget = (rng() % 4 != 0) ? 60 + rng() % 900 : 0;
    opt.max_records =
        (opt.byte_budget == 0 || rng() % 2 != 0) ? 3 + rng() % 50 : 0;
    opt.seal_threshold = 1 + rng() % 48;
    SeriesStore store{opt};
    const auto records = synthetic_stream(800, 1000 + static_cast<std::uint64_t>(trial));
    std::size_t next = 0;
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    for (int op = 0; op < 300 && next < records.size(); ++op) {
      const auto choice = rng() % 12;
      if (choice < 7) {
        const std::size_t burst =
            std::min<std::size_t>(1 + rng() % 16, records.size() - next);
        for (std::size_t i = 0; i < burst; ++i) {
          store.push(records[next++]);
          ++pushed;
        }
      } else {
        auto batch = store.pop_batch(1 + rng() % 60);
        popped += batch.size();
        if ((rng() & 1) != 0 && !batch.empty()) {
          const std::size_t keep = rng() % (batch.size() + 1);
          std::vector<ConsumptionRecord> back(
              batch.begin() + static_cast<std::ptrdiff_t>(keep), batch.end());
          popped -= back.size();
          store.push_front(std::move(back));
        }
      }
      ASSERT_EQ(pushed, store.size() + popped + store.dropped())
          << "trial " << trial << " op " << op;
    }
    while (!store.empty()) {
      popped += store.pop_batch(1000).size();
    }
    ASSERT_EQ(pushed, popped + store.dropped()) << "trial " << trial;
    ASSERT_EQ(store.bytes_used(), 0u) << "trial " << trial;
  }
}

TEST(SeriesStore, TinyBudgetNeverDropsTheNewestRecord) {
  // Byte budget smaller than one sealed segment: eviction degrades to
  // record-by-record drops; the just-pushed record must always survive.
  SeriesStoreOptions opt;
  opt.byte_budget = 256;
  opt.max_records = 0;
  opt.seal_threshold = 64;
  SeriesStore store{opt};
  const auto records = synthetic_stream(500, 97);
  for (const auto& r : records) {
    store.push(r);
    ASSERT_GE(store.size(), 1u);
  }
  const auto out = store.pop_batch(1000);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().sequence, records.back().sequence);
}

TEST(SeriesStore, ClearKeepsCountersResetCountersZeroesThem) {
  SeriesStoreOptions opt;
  opt.byte_budget = 0;
  opt.max_records = 10;
  opt.seal_threshold = 4;
  SeriesStore store{opt};
  for (const auto& r : synthetic_stream(25, 59)) {
    store.push(r);
  }
  EXPECT_EQ(store.dropped(), 15u);
  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.dropped(), 15u);  // "since construction" counters survive
  EXPECT_EQ(store.peak_size(), 10u);
  store.reset_counters();
  EXPECT_EQ(store.dropped(), 0u);
  EXPECT_EQ(store.peak_size(), 0u);
}

TEST(SeriesStore, RejectsUnboundedAndZeroThreshold) {
  SeriesStoreOptions unbounded;
  unbounded.byte_budget = 0;
  unbounded.max_records = 0;
  EXPECT_THROW(SeriesStore{unbounded}, std::invalid_argument);
  SeriesStoreOptions zero_seal;
  zero_seal.seal_threshold = 0;
  EXPECT_THROW(SeriesStore{zero_seal}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LocalStore counter reset (the legacy FIFO keeps its contract)
// ---------------------------------------------------------------------------

TEST(LocalStoreCounters, ResetCountersRebases) {
  core::LocalStore store{3};
  for (std::uint64_t i = 0; i < 10; ++i) {
    ConsumptionRecord r;
    r.sequence = i;
    store.push(std::move(r));
  }
  EXPECT_EQ(store.dropped(), 7u);
  store.clear();
  EXPECT_EQ(store.dropped(), 7u);  // clear() preserves counters...
  store.reset_counters();          // ...reset_counters() zeroes them
  EXPECT_EQ(store.dropped(), 0u);
  EXPECT_EQ(store.peak_size(), 0u);
}

// ---------------------------------------------------------------------------
// Tsdb (aggregator-side sharded store)
// ---------------------------------------------------------------------------

std::vector<ConsumptionRecord> fleet_stream(std::size_t devices,
                                            std::size_t per_device,
                                            std::uint64_t seed) {
  std::vector<ConsumptionRecord> out;
  for (std::size_t d = 0; d < devices; ++d) {
    auto stream = synthetic_stream(per_device, seed + d);
    for (auto& r : stream) {
      r.device_id = "dev-" + std::to_string(d + 1);
      out.push_back(std::move(r));
    }
  }
  return out;
}

TEST(Tsdb, IngestDedupsPerDeviceSequence) {
  Tsdb db;
  const auto records = synthetic_stream(100, 61);
  for (const auto& r : records) {
    EXPECT_TRUE(db.ingest(r));
  }
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(db.ingest(records[i]));  // retransmission
  }
  EXPECT_EQ(db.stats().records_ingested, 100u);
  EXPECT_EQ(db.stats().duplicates_dropped, 10u);
  EXPECT_EQ(db.devices(), std::vector<core::DeviceId>{"dev-1"});
}

TEST(Tsdb, ScanMatchesNaiveRangeFilter) {
  Tsdb db{TsdbOptions{4, 32}};  // several sealed segments + open head
  const auto records = synthetic_stream(500, 67);
  for (const auto& r : records) {
    db.ingest(r);
  }
  const std::int64_t t0 = records[100].timestamp_ns;
  const std::int64_t t1 = records[400].timestamp_ns;  // exclusive
  const auto got = db.scan("dev-1", t0, t1);
  std::vector<std::uint64_t> want;
  for (const auto& r : records) {
    if (r.timestamp_ns >= t0 && r.timestamp_ns < t1) {
      want.push_back(r.sequence);
    }
  }
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].sequence, want[i]);
  }
  EXPECT_GT(db.stats().segments_pruned, 0u);  // summaries pruned something
}

TEST(Tsdb, ScanHonorsFilters) {
  Tsdb db;
  const auto records = synthetic_stream(200, 71);
  for (const auto& r : records) {
    db.ingest(r);
  }
  store::RecordFilter live_wan1;
  live_wan1.network = "wan-1";
  live_wan1.stored_offline = false;
  const auto got = db.scan("dev-1", 0, INT64_MAX, live_wan1);
  std::size_t want = 0;
  for (const auto& r : records) {
    want += (r.network == "wan-1" && !r.stored_offline) ? 1 : 0;
  }
  EXPECT_EQ(got.size(), want);
  for (const auto& r : got) {
    EXPECT_EQ(r.network, "wan-1");
    EXPECT_FALSE(r.stored_offline);
  }
}

TEST(Tsdb, DownsampleMatchesNaiveWindowMath) {
  Tsdb db{TsdbOptions{2, 64}};
  const auto records = synthetic_stream(400, 73);
  for (const auto& r : records) {
    db.ingest(r);
  }
  const std::int64_t t0 = records.front().timestamp_ns;
  const std::int64_t t1 = records.back().timestamp_ns + 1;
  const std::int64_t window = 1'000'000'000;  // 1 s ≈ 10 records
  const auto windows = db.downsample("dev-1", t0, t1, window);
  ASSERT_EQ(windows.size(),
            static_cast<std::size_t>((t1 - t0 + window - 1) / window));
  // Naive reference over the quantization-faithful decoded records.
  const auto decoded = db.scan("dev-1", t0, t1);
  for (const auto& w : windows) {
    std::uint64_t count = 0;
    double current_sum = 0.0;
    double max_current = 0.0;
    double energy = 0.0;
    for (const auto& r : decoded) {
      if (r.timestamp_ns >= w.start_ns && r.timestamp_ns < w.start_ns + window) {
        ++count;
        current_sum += r.current_ma;
        max_current = std::max(max_current, r.current_ma);
        energy += r.energy_mwh;
      }
    }
    ASSERT_EQ(w.count, count) << "window at " << w.start_ns;
    if (count > 0) {
      EXPECT_NEAR(w.avg_current_ma, current_sum / static_cast<double>(count),
                  1e-9);
      EXPECT_NEAR(w.max_current_ma, max_current, 1e-9);
      EXPECT_NEAR(w.sum_energy_mwh, energy, 1e-9);
    }
  }
}

TEST(Tsdb, DownsampleFullRangeSentinelClampsToObservedBounds) {
  // Regression: n_windows used to be sized straight from (t1 - t0), so the
  // sentinel full-range query below was signed-overflow UB and an OOM-sized
  // allocation.  The range must clamp to the series' observed bounds first.
  Tsdb db{TsdbOptions{2, 32}};
  const auto records = synthetic_stream(300, 107);
  for (const auto& r : records) {
    db.ingest(r);
  }
  const std::int64_t window = 1'000'000'000;
  const auto sentinel = db.downsample("dev-1", INT64_MIN, INT64_MAX, window);
  ASSERT_FALSE(sentinel.empty());
  // Same records as the explicit-range query; windows stay modest.
  const std::int64_t t0 = records.front().timestamp_ns;
  const std::int64_t t1 = records.back().timestamp_ns + 1;
  EXPECT_LE(sentinel.size(),
            static_cast<std::size_t>((t1 - t0 + window - 1) / window) + 1);
  std::uint64_t sentinel_count = 0;
  for (const auto& w : sentinel) {
    sentinel_count += w.count;
  }
  EXPECT_EQ(sentinel_count, records.size());
  // An empty-range or unknown-device sentinel stays empty (no allocation).
  EXPECT_TRUE(db.downsample("dev-none", INT64_MIN, INT64_MAX, window).empty());
  EXPECT_TRUE(db.downsample("dev-1", INT64_MAX, INT64_MIN, window).empty());
  // One-sided sentinels clamp the open end only.
  const auto from_min = db.downsample("dev-1", INT64_MIN, t1, window);
  const auto to_max = db.downsample("dev-1", t0, INT64_MAX, window);
  std::uint64_t from_min_count = 0;
  std::uint64_t to_max_count = 0;
  for (const auto& w : from_min) {
    from_min_count += w.count;
  }
  for (const auto& w : to_max) {
    to_max_count += w.count;
  }
  EXPECT_EQ(from_min_count, records.size());
  EXPECT_EQ(to_max_count, records.size());
}

TEST(Tsdb, DownsampleExtremeTimestampCannotForceHugeAllocation) {
  // The observed-bounds clamp alone is not enough: timestamps are
  // unvalidated device clocks, so one corrupt/adversarial record near
  // INT64_MAX would still widen the clamped range to an OOM-sized window
  // array.  Queries past the window cap return empty instead.
  Tsdb db{TsdbOptions{2, 32}};
  const auto records = synthetic_stream(50, 137);
  for (const auto& r : records) {
    db.ingest(r);
  }
  ConsumptionRecord evil = records.back();
  evil.sequence = 999'999;
  evil.timestamp_ns = INT64_MAX - 1;
  ASSERT_TRUE(db.ingest(evil));
  // ~9e9 one-second windows would be needed: guarded, not allocated.
  EXPECT_TRUE(db.downsample("dev-1", INT64_MIN, INT64_MAX, 1'000'000'000)
                  .empty());
  EXPECT_TRUE(db.downsample("dev-1", 0, INT64_MAX, 1'000'000'000).empty());
  // Corrupt clocks at *both* extremes: the span approaches 2^64, where a
  // naive ceil's rounding add would wrap to a tiny window count that
  // passes the cap while records index far past the array.  Must stay
  // empty, not corrupt memory.
  ConsumptionRecord evil_low = records.back();
  evil_low.sequence = 999'998;
  evil_low.timestamp_ns = INT64_MIN;
  ASSERT_TRUE(db.ingest(evil_low));
  EXPECT_TRUE(db.downsample("dev-1", INT64_MIN, INT64_MAX, 1'000'000'000)
                  .empty());
  EXPECT_TRUE(db.downsample("dev-1", INT64_MIN, INT64_MAX, 3).empty());
  // A window sized so the count lands exactly at the cap does allocate —
  // and the window-start arithmetic (t0c near INT64_MIN, giant window)
  // must not overflow int64 (UBSan-pinned).  Starts ascend by one window.
  const auto giant = db.downsample("dev-1", INT64_MIN, INT64_MAX, INT64_C(1) << 44);
  ASSERT_FALSE(giant.empty());
  EXPECT_EQ(giant.front().start_ns, INT64_MIN);
  for (std::size_t i = 1; i < giant.size(); ++i) {
    EXPECT_EQ(giant[i].start_ns - giant[i - 1].start_ns, INT64_C(1) << 44);
  }
  std::uint64_t giant_count = 0;
  for (const auto& w : giant) {
    giant_count += w.count;
  }
  EXPECT_EQ(giant_count, records.size() + 2);  // both evil records included
  // A sane explicit range on the same series still answers normally.
  const auto windows =
      db.downsample("dev-1", records.front().timestamp_ns,
                    records.back().timestamp_ns + 1, 1'000'000'000);
  ASSERT_FALSE(windows.empty());
  std::uint64_t count = 0;
  for (const auto& w : windows) {
    count += w.count;
  }
  EXPECT_EQ(count, records.size());
}

TEST(Tsdb, DownsampleClampKeepsGridAnchoredAtT0) {
  // The clamp must not re-anchor the window grid: a t0 below the first
  // record starts the array at the last grid boundary at or below it, so
  // fleet merges across devices stay aligned.
  Tsdb db{TsdbOptions{2, 64}};
  const auto records = synthetic_stream(50, 109, /*t0_ns=*/10'000'000'000);
  for (const auto& r : records) {
    db.ingest(r);
  }
  const std::int64_t window = 1'000'000'000;
  const std::int64_t t0 = records.front().timestamp_ns - window * 5 - 123;
  const auto windows = db.downsample("dev-1", t0, INT64_MAX, window);
  ASSERT_FALSE(windows.empty());
  // First window sits on the t0-anchored grid, within one window of the
  // first record, and leading all-empty windows are trimmed.
  EXPECT_EQ((windows.front().start_ns - t0) % window, 0);
  EXPECT_LE(windows.front().start_ns, records.front().timestamp_ns);
  EXPECT_GT(windows.front().start_ns + window, records.front().timestamp_ns);
  // In-bounds t0 is untouched: same grid, same counts as before the clamp.
  const auto exact = db.downsample("dev-1", records.front().timestamp_ns,
                                   records.back().timestamp_ns + 1, window);
  ASSERT_FALSE(exact.empty());
  EXPECT_EQ(exact.front().start_ns, records.front().timestamp_ns);
}

TEST(Tsdb, AggregateFilterOverloadMatchesScanReference) {
  // Regression for the missing RecordFilter overload: filtered roll-ups now
  // run inside aggregate() (time-pruned, quantized fold) instead of forcing
  // callers through a full scan() decode.
  Tsdb db{TsdbOptions{4, 32}};
  const auto records = synthetic_stream(400, 113);
  for (const auto& r : records) {
    db.ingest(r);
  }
  RecordFilter live_wan1;
  live_wan1.network = "wan-1";
  live_wan1.stored_offline = false;
  const auto agg = db.aggregate("dev-1", INT64_MIN, INT64_MAX, live_wan1);
  ASSERT_TRUE(agg.has_value());
  const auto decoded = db.scan("dev-1", INT64_MIN, INT64_MAX, live_wan1);
  ASSERT_FALSE(decoded.empty());
  EXPECT_EQ(agg->count, decoded.size());
  double current_sum = 0.0;
  double energy = 0.0;
  double min_cur = decoded.front().current_ma;
  double max_cur = decoded.front().current_ma;
  for (const auto& r : decoded) {
    current_sum += r.current_ma;
    energy += r.energy_mwh;
    min_cur = std::min(min_cur, r.current_ma);
    max_cur = std::max(max_cur, r.current_ma);
  }
  EXPECT_NEAR(agg->avg_current_ma,
              current_sum / static_cast<double>(decoded.size()), 1e-6);
  EXPECT_NEAR(agg->min_current_ma, min_cur, 1e-9);
  EXPECT_NEAR(agg->max_current_ma, max_cur, 1e-9);
  EXPECT_NEAR(agg->sum_energy_mwh, energy, 1e-6);
  EXPECT_EQ(agg->t_min_ns, decoded.front().timestamp_ns);
  EXPECT_EQ(agg->t_max_ns, decoded.back().timestamp_ns);
  // A filter matching nothing yields nullopt, not a zero aggregate.
  RecordFilter nothing;
  nothing.network = "wan-none";
  EXPECT_FALSE(db.aggregate("dev-1", INT64_MIN, INT64_MAX, nothing));
}

TEST(Tsdb, AggregateKeepsSummaryFastPathOnlyForEmptyFilter) {
  Tsdb db{TsdbOptions{2, 40}};
  const auto records = synthetic_stream(400, 127);
  for (const auto& r : records) {
    db.ingest(r);
  }
  const auto before = db.stats();
  // Empty filter over the whole history: interior segments answer from
  // summaries.
  ASSERT_TRUE(db.aggregate("dev-1", INT64_MIN, INT64_MAX, RecordFilter{}));
  const auto after_empty = db.stats();
  EXPECT_GT(after_empty.summary_hits, before.summary_hits);
  // A non-empty filter must decode fully-covered segments: summaries hold
  // no per-filter breakdowns, so summary_hits must not move.
  RecordFilter offline_only;
  offline_only.stored_offline = true;
  ASSERT_TRUE(db.aggregate("dev-1", INT64_MIN, INT64_MAX, offline_only));
  const auto after_filtered = db.stats();
  EXPECT_EQ(after_filtered.summary_hits, after_empty.summary_hits);
}

TEST(Tsdb, QueryCountersAreShardLocalAndFoldOnRead) {
  // The counters moved off the (shared) TsdbStats into per-shard storage so
  // pool workers never write one location; stats() folds them.  Two devices
  // on different shards must both contribute.
  Tsdb db{TsdbOptions{8, 16}};
  const auto records = fleet_stream(8, 100, 131);
  for (const auto& r : records) {
    db.ingest(r);
  }
  std::vector<core::DeviceId> ids = db.devices();
  ASSERT_GE(ids.size(), 2u);
  // Pick two devices on different shards.
  const core::DeviceId a = ids.front();
  core::DeviceId b;
  for (const auto& id : ids) {
    if (db.shard_of(id) != db.shard_of(a)) {
      b = id;
      break;
    }
  }
  ASSERT_FALSE(b.empty());
  const auto t1 = db.aggregate(a, INT64_MIN, INT64_MAX);
  const std::uint64_t hits_a = db.stats().summary_hits;
  const auto t2 = db.aggregate(b, INT64_MIN, INT64_MAX);
  const std::uint64_t hits_ab = db.stats().summary_hits;
  ASSERT_TRUE(t1 && t2);
  EXPECT_GT(hits_a, 0u);
  EXPECT_GT(hits_ab, hits_a);
}

TEST(Tsdb, AggregateSummaryPathAgreesWithDecodePath) {
  Tsdb db{TsdbOptions{2, 50}};
  const auto records = synthetic_stream(500, 79);
  for (const auto& r : records) {
    db.ingest(r);
  }
  // Whole-history aggregate: interior segments answer from summaries.
  const auto agg = db.aggregate("dev-1", INT64_MIN, INT64_MAX);
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->count, records.size());
  EXPECT_GT(db.stats().summary_hits, 0u);
  // Decode-path reference.
  const auto decoded = db.scan("dev-1", INT64_MIN, INT64_MAX);
  double current_sum = 0.0;
  double energy = 0.0;
  double min_cur = decoded.front().current_ma;
  double max_cur = decoded.front().current_ma;
  for (const auto& r : decoded) {
    current_sum += r.current_ma;
    energy += r.energy_mwh;
    min_cur = std::min(min_cur, r.current_ma);
    max_cur = std::max(max_cur, r.current_ma);
  }
  EXPECT_NEAR(agg->avg_current_ma,
              current_sum / static_cast<double>(decoded.size()), 1e-6);
  EXPECT_NEAR(agg->min_current_ma, min_cur, 1e-9);
  EXPECT_NEAR(agg->max_current_ma, max_cur, 1e-9);
  EXPECT_NEAR(agg->sum_energy_mwh, energy, 1e-6);
  EXPECT_EQ(agg->t_min_ns, decoded.front().timestamp_ns);
  EXPECT_EQ(agg->t_max_ns, decoded.back().timestamp_ns);
}

TEST(Tsdb, RangeQueryReproducesBillingWithinQuantizationTolerance) {
  // The acceptance bound: energy totals answered by the store match an
  // exact (double-precision) BillingService accumulation to within the
  // documented per-record quantization tolerance.
  Tsdb db{TsdbOptions{4, 128}};
  core::BillingService exact{"wan-1", core::Tariff{}};
  const auto records = fleet_stream(5, 700, 83);
  for (const auto& r : records) {
    db.ingest(r);
    exact.ingest(r);
  }
  for (std::size_t d = 1; d <= 5; ++d) {
    const core::DeviceId id = "dev-" + std::to_string(d);
    const auto exact_invoice = exact.invoice_for(id);
    const double tolerance = 700.0 * kEnergyToleranceMwh;
    // Whole-history range query.
    const auto agg = db.aggregate(id, INT64_MIN, INT64_MAX);
    ASSERT_TRUE(agg.has_value());
    EXPECT_NEAR(agg->sum_energy_mwh, exact_invoice.total_energy_mwh,
                tolerance)
        << id;
    // Store-backed billing sees the same totals.
    core::BillingService backed{"wan-1", core::Tariff{}};
    backed.bind_store(&db);
    backed.mark_billable(id);
    const auto backed_invoice = backed.invoice_for(id);
    EXPECT_NEAR(backed_invoice.total_energy_mwh,
                exact_invoice.total_energy_mwh, tolerance)
        << id;
    ASSERT_EQ(backed_invoice.lines.size(), exact_invoice.lines.size());
    for (std::size_t l = 0; l < backed_invoice.lines.size(); ++l) {
      EXPECT_EQ(backed_invoice.lines[l].network,
                exact_invoice.lines[l].network);
      EXPECT_EQ(backed_invoice.lines[l].records,
                exact_invoice.lines[l].records);
      EXPECT_NEAR(backed_invoice.lines[l].cost, exact_invoice.lines[l].cost,
                  1e-6);
    }
  }
}

TEST(Tsdb, NetworkBreakdownHonorsFromBound) {
  // The ownership-transfer billing scope: records before `from_ns` (the
  // visiting era, already invoiced by the previous master) are excluded,
  // whether they sit in sealed segments or the open head.
  Tsdb db{TsdbOptions{2, 64}};
  const auto records = synthetic_stream(300, 101);
  for (const auto& r : records) {
    db.ingest(r);
  }
  const std::int64_t cut = records[150].timestamp_ns;
  const auto bounded = db.network_breakdown("dev-1", cut);
  std::uint64_t want_records = 0;
  double want_energy = 0.0;
  for (const auto& r : db.scan("dev-1", cut, INT64_MAX)) {
    ++want_records;
    want_energy += r.energy_mwh;
  }
  std::uint64_t got_records = 0;
  double got_energy = 0.0;
  for (const auto& [network, use] : bounded) {
    got_records += use.records;
    got_energy += use.energy_mwh;
  }
  EXPECT_EQ(got_records, want_records);
  EXPECT_NEAR(got_energy, want_energy, 1e-9);
  // Store-backed billing applies the bound through mark_billable.
  core::BillingService billing{"wan-1", core::Tariff{}};
  billing.bind_store(&db);
  billing.mark_billable("dev-1", cut);
  EXPECT_NEAR(billing.invoice_for("dev-1").total_energy_mwh, got_energy,
              1e-9);
  EXPECT_NEAR(billing.total_energy_mwh(), got_energy, 1e-9);
  // An earlier mark is not overwritten by a later, narrower one.
  billing.mark_billable("dev-1", INT64_MAX);
  EXPECT_NEAR(billing.invoice_for("dev-1").total_energy_mwh, got_energy,
              1e-9);
}

TEST(Tsdb, DedupWindowIsBounded) {
  Tsdb db;
  const auto records = synthetic_stream(10'000, 103);
  for (const auto& r : records) {
    db.ingest(r);
  }
  // Recent sequences still dedup...
  EXPECT_FALSE(db.ingest(records.back()));
  EXPECT_FALSE(db.ingest(records[records.size() - 4000]));
  // ...and the store held exactly one copy of everything.
  EXPECT_EQ(db.stats().records_ingested, 10'000u);
  const auto agg = db.aggregate("dev-1", INT64_MIN, INT64_MAX);
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->count, 10'000u);
}

TEST(Tsdb, ShardingIsStableAndCoversAllDevices) {
  Tsdb db{TsdbOptions{8, 64}};
  const auto records = fleet_stream(32, 10, 89);
  for (const auto& r : records) {
    db.ingest(r);
  }
  EXPECT_EQ(db.devices().size(), 32u);
  EXPECT_EQ(db.shard_count(), 8u);
  for (std::size_t d = 1; d <= 32; ++d) {
    const core::DeviceId id = "dev-" + std::to_string(d);
    EXPECT_EQ(db.shard_of(id), db.shard_of(id));  // stable
    EXPECT_TRUE(db.has_device(id));
    EXPECT_GT(db.total_energy_mwh(id), 0.0);
  }
  EXPECT_FALSE(db.has_device("dev-999"));
  EXPECT_EQ(db.total_energy_mwh("dev-999"), 0.0);
  EXPECT_FALSE(db.aggregate("dev-999", 0, INT64_MAX).has_value());
}

}  // namespace
}  // namespace emon::store
