// The incremental roll-up engine (store/rollup.{hpp,cpp}) and the push
// subscription service (core/subscription.{hpp,cpp}).
//
// The load-bearing contract is bit-parity: every ClosedWindow a rollup
// emits — per-device aggregates, their count-weighted merge, the
// per-network breakdown — must compare == (doubles included) to
// QueryEngine::aggregate / network_breakdown over the same range, filter
// and device set, and the same equality must survive the MQTT wire (f64
// bit-pattern encoding).  Covered here:
//   * tumbling / sliding / filtered / device-scoped windows vs cold queries
//   * mid-stream registration backfill, pool-parallel drain determinism
//   * seeded out-of-order ingest fuzz with drains interleaved
//   * beyond-horizon late records: counted, dropped to the cold path,
//     hot_window refuses to answer
//   * hot (pre-close) window reads vs cold aggregates
//   * subscribe/ack/push/unsubscribe over a real broker + client pair,
//     rollup sharing, re-subscribe, rejects, malformed frames
//   * broker fan-out batching (one wire frame, N recipients)

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "core/records.hpp"
#include "core/subscription.hpp"
#include "net/channel.hpp"
#include "net/mqtt.hpp"
#include "sim/kernel.hpp"
#include "store/query_engine.hpp"
#include "store/rollup.hpp"
#include "store/segment.hpp"
#include "store/tsdb.hpp"
#include "util/rng.hpp"

namespace emon::store {
namespace {

using core::ConsumptionRecord;
using core::MembershipKind;

constexpr std::int64_t kSecond = 1'000'000'000;
constexpr std::int64_t kMs = 1'000'000;

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

/// One device's jittered 10 Hz stream with a roamed-network slice in the
/// middle and every fourth record offline-buffered.
std::vector<ConsumptionRecord> device_stream(const core::DeviceId& id,
                                             std::size_t n, std::uint64_t seed,
                                             const core::NetworkId& home,
                                             const core::NetworkId& visited,
                                             std::int64_t t0_ns = 0) {
  util::Rng rng{seed};
  std::vector<ConsumptionRecord> out;
  out.reserve(n);
  std::int64_t t = t0_ns;
  for (std::size_t i = 0; i < n; ++i) {
    t += 100 * kMs + static_cast<std::int64_t>(rng.uniform(-40e3, 40e3));
    ConsumptionRecord r;
    r.device_id = id;
    r.sequence = i + 1;
    r.timestamp_ns = t;
    r.interval_ns = 100 * kMs;
    r.current_ma =
        160.0 + 0.05 * static_cast<double>(i) + rng.uniform(-4.0, 4.0);
    r.bus_voltage_mv = 5000.0 + rng.uniform(-9.0, 9.0);
    r.energy_mwh = r.current_ma * 5.0 * (0.1 / 3600.0);
    const bool roamed = i >= n / 3 && i < n / 2;
    r.network = roamed ? visited : home;
    r.membership = roamed ? MembershipKind::kTemporary : MembershipKind::kHome;
    r.stored_offline = i % 4 == 0;
    out.push_back(std::move(r));
  }
  return out;
}

/// Round-robin interleave of D device streams — the shard-mixing arrival
/// order an aggregator actually sees.
std::vector<ConsumptionRecord> make_fleet(std::size_t devices,
                                          std::size_t per_device,
                                          std::size_t networks,
                                          std::uint64_t seed) {
  std::vector<std::vector<ConsumptionRecord>> streams;
  for (std::size_t d = 0; d < devices; ++d) {
    streams.push_back(device_stream(
        "dev-" + std::to_string(d + 1), per_device, seed + d,
        "wan-" + std::to_string(d % networks),
        "wan-" + std::to_string((d + 1) % networks),
        static_cast<std::int64_t>(d) * 7 * kMs));
  }
  std::vector<ConsumptionRecord> arrival;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (auto& stream : streams) {
      if (i < stream.size()) {
        arrival.push_back(std::move(stream[i]));
        any = true;
      }
    }
    if (!any) {
      break;
    }
  }
  return arrival;
}

/// Advances every rollup's watermark without adding in-range data: a sane
/// record from a sentinel device far past the range under test.
ConsumptionRecord watermark_record(std::int64_t ts_ns,
                                   std::uint64_t seq = 1) {
  ConsumptionRecord r;
  r.device_id = "zz-watermark";
  r.sequence = seq;
  r.timestamp_ns = ts_ns;
  r.interval_ns = 100 * kMs;
  r.current_ma = 1.0;
  r.bus_voltage_mv = 5000.0;
  r.energy_mwh = 0.001;
  r.network = "wan-0";
  r.membership = MembershipKind::kHome;
  r.stored_offline = false;
  return r;
}

// ---------------------------------------------------------------------------
// Exact-equality helpers (doubles compared with ==; see file comment)
// ---------------------------------------------------------------------------

bool agg_equal(const DeviceAggregate& a, const DeviceAggregate& b) {
  return a.count == b.count && a.t_min_ns == b.t_min_ns &&
         a.t_max_ns == b.t_max_ns && a.min_current_ma == b.min_current_ma &&
         a.max_current_ma == b.max_current_ma &&
         a.avg_current_ma == b.avg_current_ma &&
         a.sum_energy_mwh == b.sum_energy_mwh;
}

bool usage_equal(const std::map<core::NetworkId, NetworkUsage>& a,
                 const std::map<core::NetworkId, NetworkUsage>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (auto ia = a.begin(), ib = b.begin(); ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first || ia->second.records != ib->second.records ||
        ia->second.energy_mwh != ib->second.energy_mwh) {
      return false;
    }
  }
  return true;
}

/// Naive per-network oracle: re-fold a cold scan of the window in the same
/// quantized integer domain the engine uses — one fleet-wide integer
/// record/energy sum per network, a single dequantize per network (the
/// engine keeps these sums in a rollup-global pane ring, so no per-device
/// double addition ever happens).  QueryEngine::network_breakdown is not
/// usable here — it is a billing read with lower-bound-only range
/// semantics.
std::map<core::NetworkId, NetworkUsage> naive_breakdown(
    const FleetScan& scan) {
  std::map<core::NetworkId, std::pair<std::uint64_t, std::int64_t>> sums;
  for (const auto& span : scan.per_device) {
    for (std::size_t i = span.offset; i < span.offset + span.count; ++i) {
      const auto& r = scan.records[i];
      auto& [records, energy_q] = sums[r.network];
      records += 1;
      energy_q += quantize(r.energy_mwh, kEnergyScale);
    }
  }
  std::map<core::NetworkId, NetworkUsage> merged;
  for (const auto& [network, e] : sums) {
    auto& total = merged[network];
    total.records = e.first;
    total.energy_mwh = dequantize(e.second, kEnergyScale);
  }
  return merged;
}

/// The differential oracle: the window must be bit-identical to the cold
/// fleet query over its range with the rollup's own filter/device scope.
void expect_window_matches_cold(const QueryEngine& engine,
                                const RollupSpec& spec,
                                const ClosedWindow& w,
                                const std::string& label) {
  QuerySpec q;
  q.devices = spec.devices;
  q.t0_ns = w.t0_ns;
  q.t1_ns = w.t1_ns;
  q.filter = spec.filter;
  const FleetAggregate cold = engine.aggregate(q);
  ASSERT_EQ(w.per_device.size(), cold.per_device.size()) << label;
  for (std::size_t i = 0; i < w.per_device.size(); ++i) {
    EXPECT_EQ(w.per_device[i].first, cold.per_device[i].first) << label;
    EXPECT_TRUE(agg_equal(w.per_device[i].second, cold.per_device[i].second))
        << label << " device " << w.per_device[i].first;
  }
  EXPECT_TRUE(agg_equal(w.merged, cold.merged)) << label;
  EXPECT_TRUE(usage_equal(w.breakdown, naive_breakdown(engine.scan(q))))
      << label;
}

void ingest_all(Tsdb& db, const std::vector<ConsumptionRecord>& records) {
  for (const auto& r : records) {
    db.ingest(r);
  }
}

// ---------------------------------------------------------------------------
// Spec validation
// ---------------------------------------------------------------------------

TEST(RollupSpec, InvalidSpecsRejected) {
  Tsdb db{TsdbOptions{4, 32}};
  RollupEngine engine{db};

  RollupSpec zero_window;
  zero_window.window_ns = 0;
  zero_window.slide_ns = kSecond;
  EXPECT_THROW(engine.register_rollup(zero_window), std::invalid_argument);

  RollupSpec bad_slide;
  bad_slide.window_ns = 10 * kSecond;
  bad_slide.slide_ns = 3 * kSecond;  // does not divide the width
  EXPECT_THROW(engine.register_rollup(bad_slide), std::invalid_argument);

  RollupSpec negative_lateness;
  negative_lateness.window_ns = kSecond;
  negative_lateness.slide_ns = kSecond;
  negative_lateness.lateness_ns = -1;
  EXPECT_THROW(engine.register_rollup(negative_lateness),
               std::invalid_argument);

  RollupSpec far_anchor;
  far_anchor.window_ns = kSecond;
  far_anchor.slide_ns = kSecond;
  far_anchor.anchor_ns = std::int64_t{1} << 62;
  EXPECT_THROW(engine.register_rollup(far_anchor), std::invalid_argument);

  EXPECT_EQ(engine.rollup_count(), 0u);
}

// ---------------------------------------------------------------------------
// Differential: maintained windows vs cold fleet queries
// ---------------------------------------------------------------------------

TEST(RollupDifferential, TumblingWindowsMatchColdFleetQuery) {
  Tsdb db{TsdbOptions{8, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 500 * kMs;
  const std::uint64_t id = rollups.register_rollup(spec);

  const auto fleet = make_fleet(6, 120, 3, 77);
  ingest_all(db, fleet);
  db.ingest(watermark_record(60 * kSecond));

  const QueryEngine engine{db, QueryEngineOptions{1}};
  const auto windows = rollups.drain(id);
  ASSERT_GE(windows.size(), 10u);
  for (const auto& w : windows) {
    EXPECT_EQ(w.t1_ns - w.t0_ns, kSecond);
    expect_window_matches_cold(engine, spec, w, "tumbling");
  }
  const RollupStats* stats = rollups.stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->records_dropped_late, 0u);
  EXPECT_GE(stats->windows_closed, windows.size());
  // A second drain with nothing new is empty, not a re-emission.
  EXPECT_TRUE(rollups.drain(id).empty());
}

TEST(RollupDifferential, SlidingWindowsOverlapAndMatch) {
  Tsdb db{TsdbOptions{4, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = 250 * kMs;  // 4 panes per window
  spec.lateness_ns = 500 * kMs;
  const std::uint64_t id = rollups.register_rollup(spec);

  ingest_all(db, make_fleet(4, 80, 2, 11));
  db.ingest(watermark_record(40 * kSecond));

  const QueryEngine engine{db, QueryEngineOptions{1}};
  const auto windows = rollups.drain(id);
  ASSERT_GE(windows.size(), 20u);
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    EXPECT_EQ(windows[i + 1].t0_ns - windows[i].t0_ns, 250 * kMs);
  }
  for (const auto& w : windows) {
    expect_window_matches_cold(engine, spec, w, "sliding");
  }
}

TEST(RollupDifferential, FilteredRollupMatchesFilteredColdQuery) {
  Tsdb db{TsdbOptions{4, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  RollupSpec spec;
  spec.window_ns = 2 * kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 500 * kMs;
  spec.filter.network = "wan-0";
  spec.filter.stored_offline = false;
  const std::uint64_t id = rollups.register_rollup(spec);

  ingest_all(db, make_fleet(5, 100, 3, 23));
  db.ingest(watermark_record(50 * kSecond));

  const QueryEngine engine{db, QueryEngineOptions{1}};
  const auto windows = rollups.drain(id);
  ASSERT_GE(windows.size(), 5u);
  for (const auto& w : windows) {
    for (const auto& [network, usage] : w.breakdown) {
      EXPECT_EQ(network, "wan-0");
      (void)usage;
    }
    expect_window_matches_cold(engine, spec, w, "filtered");
  }
}

TEST(RollupDifferential, DeviceScopeLimitsAndMatches) {
  Tsdb db{TsdbOptions{4, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 500 * kMs;
  spec.devices = {"dev-2", "dev-4"};
  const std::uint64_t id = rollups.register_rollup(spec);

  ingest_all(db, make_fleet(5, 60, 2, 31));
  db.ingest(watermark_record(30 * kSecond));

  const QueryEngine engine{db, QueryEngineOptions{1}};
  const auto windows = rollups.drain(id);
  ASSERT_GE(windows.size(), 3u);
  for (const auto& w : windows) {
    for (const auto& [device, agg] : w.per_device) {
      EXPECT_TRUE(device == "dev-2" || device == "dev-4") << device;
      (void)agg;
    }
    expect_window_matches_cold(engine, spec, w, "scoped");
  }
}

TEST(RollupDifferential, MidStreamRegistrationBackfillsFromStore) {
  Tsdb db{TsdbOptions{4, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  const auto fleet = make_fleet(4, 100, 2, 91);
  const std::size_t half = fleet.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    db.ingest(fleet[i]);
  }

  // Register mid-stream: open panes are backfilled from the sealed store,
  // so the first windows to close are still exact.
  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 500 * kMs;
  const std::uint64_t id = rollups.register_rollup(spec);
  const RollupStats* stats = rollups.stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->backfilled_records, 0u);

  for (std::size_t i = half; i < fleet.size(); ++i) {
    db.ingest(fleet[i]);
  }
  db.ingest(watermark_record(50 * kSecond));

  const QueryEngine engine{db, QueryEngineOptions{1}};
  const auto windows = rollups.drain(id);
  ASSERT_GE(windows.size(), 3u);
  for (const auto& w : windows) {
    expect_window_matches_cold(engine, spec, w, "backfill");
  }
}

TEST(RollupDifferential, PoolDrainBitIdenticalToSequential) {
  // The same workload through two identical engines; one drains on a
  // 4-worker pool, the other sequentially.  Windows must be bit-identical.
  const auto fleet = make_fleet(6, 100, 3, 55);

  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 500 * kMs;

  Tsdb db_a{TsdbOptions{8, 32}};
  RollupEngine rollups_a{db_a};
  db_a.set_ingest_hook(&rollups_a);
  const std::uint64_t id_a = rollups_a.register_rollup(spec);
  ingest_all(db_a, fleet);
  db_a.ingest(watermark_record(60 * kSecond));

  Tsdb db_b{TsdbOptions{8, 32}};
  RollupEngine rollups_b{db_b};
  db_b.set_ingest_hook(&rollups_b);
  const std::uint64_t id_b = rollups_b.register_rollup(spec);
  ingest_all(db_b, fleet);
  db_b.ingest(watermark_record(60 * kSecond));

  const QueryEngine pooled{db_a, QueryEngineOptions{4}};
  const auto with_pool = rollups_a.drain(id_a, &pooled.pool());
  const auto sequential = rollups_b.drain(id_b, nullptr);

  ASSERT_EQ(with_pool.size(), sequential.size());
  ASSERT_GE(with_pool.size(), 5u);
  for (std::size_t i = 0; i < with_pool.size(); ++i) {
    const auto& a = with_pool[i];
    const auto& b = sequential[i];
    EXPECT_EQ(a.t0_ns, b.t0_ns);
    EXPECT_EQ(a.t1_ns, b.t1_ns);
    ASSERT_EQ(a.per_device.size(), b.per_device.size());
    for (std::size_t d = 0; d < a.per_device.size(); ++d) {
      EXPECT_EQ(a.per_device[d].first, b.per_device[d].first);
      EXPECT_TRUE(agg_equal(a.per_device[d].second, b.per_device[d].second));
    }
    EXPECT_TRUE(agg_equal(a.merged, b.merged));
    EXPECT_TRUE(usage_equal(a.breakdown, b.breakdown));
  }
}

TEST(RollupDifferential, EmptyWindowSuppressionAndEmitEmpty) {
  // A 5 s silence in the stream: default specs skip the idle windows,
  // emit_empty specs materialize them as zero-count windows.
  std::vector<ConsumptionRecord> records;
  auto early = device_stream("dev-1", 20, 5, "wan-0", "wan-1", 0);
  auto late = device_stream("dev-1", 20, 6, "wan-0", "wan-1", 8 * kSecond);
  for (std::size_t i = 0; i < late.size(); ++i) {
    late[i].sequence = 1000 + i;  // keep per-device sequences unique
  }
  records.insert(records.end(), early.begin(), early.end());
  records.insert(records.end(), late.begin(), late.end());

  Tsdb db{TsdbOptions{2, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  RollupSpec quiet;
  quiet.window_ns = kSecond;
  quiet.slide_ns = kSecond;
  quiet.lateness_ns = 0;
  const std::uint64_t quiet_id = rollups.register_rollup(quiet);

  RollupSpec chatty = quiet;
  chatty.emit_empty = true;
  const std::uint64_t chatty_id = rollups.register_rollup(chatty);

  ingest_all(db, records);
  db.ingest(watermark_record(20 * kSecond));

  const auto suppressed = rollups.drain(quiet_id);
  const auto emitted = rollups.drain(chatty_id);
  for (const auto& w : suppressed) {
    EXPECT_FALSE(w.empty());
  }
  EXPECT_GT(emitted.size(), suppressed.size());
  bool saw_empty = false;
  for (const auto& w : emitted) {
    if (w.empty()) {
      saw_empty = true;
      EXPECT_EQ(w.merged.count, 0u);
      EXPECT_TRUE(w.breakdown.empty());
    }
  }
  EXPECT_TRUE(saw_empty);
}

// ---------------------------------------------------------------------------
// Out-of-order / late ingest fuzz
// ---------------------------------------------------------------------------

/// Bounded local shuffle: Fisher-Yates within disjoint blocks, so no record
/// is displaced more than `block - 1` positions.  With ~25 ms between
/// interleaved arrivals and block 10 the worst timestamp disorder stays
/// well inside the 500 ms lateness horizon — the rollup must drop nothing
/// and stay exact.
std::vector<ConsumptionRecord> bounded_shuffle(
    std::vector<ConsumptionRecord> records, std::size_t block,
    std::uint64_t seed) {
  util::Rng rng{seed};
  for (std::size_t start = 0; start < records.size(); start += block) {
    const std::size_t end = std::min(start + block, records.size());
    for (std::size_t i = end - 1; i > start; --i) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(i - start + 1)));
      std::swap(records[i], records[start + std::min(pick, i - start)]);
    }
  }
  return records;
}

TEST(RollupFuzz, OutOfOrderIngestInterleavedWithDrains) {
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    Tsdb db{TsdbOptions{8, 32}};
    RollupEngine rollups{db};
    db.set_ingest_hook(&rollups);

    RollupSpec plain;
    plain.window_ns = kSecond;
    plain.slide_ns = kSecond;
    plain.lateness_ns = 500 * kMs;
    const std::uint64_t plain_id = rollups.register_rollup(plain);

    RollupSpec filtered;
    filtered.window_ns = 2 * kSecond;
    filtered.slide_ns = 500 * kMs;
    filtered.lateness_ns = 500 * kMs;
    filtered.filter.stored_offline = false;
    const std::uint64_t filtered_id = rollups.register_rollup(filtered);

    const auto arrival =
        bounded_shuffle(make_fleet(4, 150, 2, seed), 10, seed * 7);
    const QueryEngine engine{db, QueryEngineOptions{2}};

    std::size_t total_windows = 0;
    std::size_t ingested = 0;
    for (const auto& r : arrival) {
      db.ingest(r);
      if (++ingested % 100 == 0) {
        // Drain mid-stream and verify immediately: each emitted window is
        // final (nothing later may change it), so the cold query over the
        // same range must already agree bit-for-bit.
        for (const auto& [id, spec] :
             {std::make_pair(plain_id, plain),
              std::make_pair(filtered_id, filtered)}) {
          for (const auto& w : rollups.drain(id)) {
            expect_window_matches_cold(engine, spec, w,
                                       "fuzz seed " + std::to_string(seed));
            ++total_windows;
          }
        }
      }
    }
    db.ingest(watermark_record(120 * kSecond));
    for (const auto& [id, spec] : {std::make_pair(plain_id, plain),
                                   std::make_pair(filtered_id, filtered)}) {
      for (const auto& w : rollups.drain(id)) {
        expect_window_matches_cold(engine, spec, w,
                                   "fuzz tail seed " + std::to_string(seed));
        ++total_windows;
      }
      const RollupStats* stats = rollups.stats(id);
      ASSERT_NE(stats, nullptr);
      // Disorder stayed inside the horizon: exactness may never be bought
      // by silently dropping records.
      EXPECT_EQ(stats->records_dropped_late, 0u);
      EXPECT_GT(stats->records_folded, 0u);
    }
    EXPECT_GE(total_windows, 20u);
  }
}

TEST(RollupFuzz, ConcurrentColdQueriesDuringMaintainedIngest) {
  // The serving-path split (core/serve_pipeline.hpp): the rollup engine
  // stays owner-thread state on the ingest thread — which ingests the fleet
  // and drains mid-stream — while this thread hammers cold fleet queries
  // against the same MVCC store.  Racing answers must stay internally
  // consistent (merged count == per-device fold over one snapshot), and
  // once the owner joins, every window it drained must match the quiesced
  // cold oracle bit-for-bit.
  Tsdb db{TsdbOptions{4, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 500 * kMs;
  const std::uint64_t id = rollups.register_rollup(spec);

  const auto arrival = make_fleet(6, 160, 3, 0xc01d);
  std::vector<ClosedWindow> windows;  // owner-thread only until join
  std::atomic<bool> done{false};
  std::thread owner([&] {
    std::size_t ingested = 0;
    for (const auto& r : arrival) {
      db.ingest(r);
      if (++ingested % 64 == 0) {
        auto batch = rollups.drain(id);
        windows.insert(windows.end(),
                       std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
      }
    }
    db.ingest(watermark_record(120 * kSecond));
    auto tail = rollups.drain(id);
    windows.insert(windows.end(), std::make_move_iterator(tail.begin()),
                   std::make_move_iterator(tail.end()));
    done.store(true, std::memory_order_release);
  });

  const QueryEngine engine{db, QueryEngineOptions{3}};
  std::size_t raced = 0;
  while (!done.load(std::memory_order_acquire)) {
    QuerySpec q;  // whole history, all devices
    const FleetAggregate got = engine.aggregate(q);
    std::uint64_t fold = 0;
    for (const auto& [device, agg] : got.per_device) {
      (void)device;
      fold += agg.count;
    }
    EXPECT_EQ(got.merged.count, fold) << "raced query " << raced;
    ++raced;
  }
  owner.join();

  ASSERT_GE(windows.size(), 10u);
  for (const auto& w : windows) {
    expect_window_matches_cold(engine, spec, w, "concurrent-drain");
  }
}

TEST(RollupLateness, BeyondHorizonRecordFallsToColdPath) {
  Tsdb db{TsdbOptions{2, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 100 * kMs;
  const std::uint64_t id = rollups.register_rollup(spec);

  auto stream = device_stream("dev-1", 8, 3, "wan-0", "wan-1", 0);
  ingest_all(db, stream);
  db.ingest(watermark_record(5 * kSecond));

  const QueryEngine engine{db, QueryEngineOptions{1}};
  const auto windows = rollups.drain(id);
  ASSERT_FALSE(windows.empty());
  const ClosedWindow first = windows.front();
  expect_window_matches_cold(engine, spec, first, "pre-late");
  const std::uint64_t emitted_count = first.merged.count;

  // A record landing inside the already-emitted window: the rollup must
  // count + drop it, never rewrite history.
  ConsumptionRecord late = stream.front();
  late.sequence = 999;
  late.timestamp_ns = first.t0_ns + 200 * kMs;
  ASSERT_TRUE(db.ingest(late));

  const RollupStats* stats = rollups.stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->records_dropped_late, 1u);
  EXPECT_TRUE(rollups.drain(id).empty());  // no re-emission

  // The cold path still has the record — it now counts one more than the
  // emitted window did.
  QuerySpec q;
  q.t0_ns = first.t0_ns;
  q.t1_ns = first.t1_ns;
  EXPECT_EQ(engine.aggregate(q).merged.count, emitted_count + 1);

  // And the hot read refuses to serve a range it knows it under-counts.
  EXPECT_FALSE(
      rollups.hot_window(id, "dev-1", first.t0_ns, first.t1_ns).has_value());
}

TEST(RollupLateness, RunawayWatermarkGapSkipsInsteadOfFlooding) {
  Tsdb db{TsdbOptions{2, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 0;
  const std::uint64_t id = rollups.register_rollup(spec);

  ingest_all(db, device_stream("dev-1", 5, 9, "wan-0", "wan-1", 0));
  // A 2000 s watermark jump: the guard seals at most kMaxWindowsPerDrain
  // windows and counts the skipped span instead of folding 2000 of them.
  db.ingest(watermark_record(2000 * kSecond));
  const auto windows = rollups.drain(id);
  EXPECT_LE(windows.size(), 2u);  // only the data-bearing window(s) emit
  const RollupStats* stats = rollups.stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->windows_skipped, 0u);
}

// ---------------------------------------------------------------------------
// Hot (pre-close) window reads
// ---------------------------------------------------------------------------

TEST(RollupHotWindow, MatchesColdAggregateBeforeClose) {
  Tsdb db{TsdbOptions{4, 32}};
  RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);

  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 500 * kMs;
  const std::uint64_t id = rollups.register_rollup(spec);

  ingest_all(db, make_fleet(3, 9, 2, 41));  // all inside [0, 1 s)

  const QueryEngine engine{db, QueryEngineOptions{1}};
  for (const core::DeviceId device : {"dev-1", "dev-2", "dev-3"}) {
    const auto hot = rollups.hot_window(id, device, 0, kSecond);
    ASSERT_TRUE(hot.has_value()) << device;
    QuerySpec q;
    q.devices = {device};
    q.t0_ns = 0;
    q.t1_ns = kSecond;
    const FleetAggregate cold = engine.aggregate(q);
    ASSERT_EQ(cold.per_device.size(), 1u);
    const DeviceAggregate& agg = cold.per_device[0].second;
    EXPECT_EQ(hot->count, agg.count);
    // Same quantized epilogue on both sides: exact equality, not NEAR.
    EXPECT_EQ(hot->mean_current_ma, agg.avg_current_ma);
    EXPECT_EQ(hot->min_current_ma, agg.min_current_ma);
    EXPECT_EQ(hot->max_current_ma, agg.max_current_ma);
    EXPECT_EQ(hot->sum_energy_mwh, agg.sum_energy_mwh);
  }

  // Unknown device: a true zero, not a refusal.
  const auto unknown = rollups.hot_window(id, "dev-none", 0, kSecond);
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->count, 0u);

  // Unaligned bounds and unknown rollup ids are refusals.
  EXPECT_FALSE(rollups.hot_window(id, "dev-1", 1, kSecond).has_value());
  EXPECT_FALSE(rollups.hot_window(id, "dev-1", 0, kSecond + 7).has_value());
  EXPECT_FALSE(rollups.hot_window(9999, "dev-1", 0, kSecond).has_value());
}

}  // namespace
}  // namespace emon::store

// ===========================================================================
// Push subscriptions over MQTT
// ===========================================================================

namespace emon::core {
namespace {

using net::MqttBroker;
using net::MqttClient;
using net::MqttMessage;
using store::ClosedWindow;
using store::QueryEngine;
using store::QueryEngineOptions;
using store::QuerySpec;
using store::RollupEngine;
using store::RollupSpec;
using store::Tsdb;
using store::TsdbOptions;

constexpr std::int64_t kSecond = 1'000'000'000;
constexpr std::int64_t kMs = 1'000'000;

WireAggregate to_wire(const store::DeviceAggregate& a) {
  WireAggregate w;
  w.count = a.count;
  w.t_min_ns = a.t_min_ns;
  w.t_max_ns = a.t_max_ns;
  w.min_current_ma = a.min_current_ma;
  w.max_current_ma = a.max_current_ma;
  w.avg_current_ma = a.avg_current_ma;
  w.sum_energy_mwh = a.sum_energy_mwh;
  return w;
}

struct SubscriptionFixture : ::testing::Test {
  sim::Kernel kernel;
  MqttBroker broker{kernel, "agg-1"};
  Tsdb db{TsdbOptions{4, 32}};
  RollupEngine rollups{db};
  SubscriptionService service{broker, rollups, /*anchor_ns=*/0,
                              /*default_lateness_ns=*/500 * kMs};

  SubscriptionFixture() {
    db.set_ingest_hook(&rollups);
    service.attach();
  }

  std::pair<std::shared_ptr<net::Channel>, std::shared_ptr<net::Channel>>
  channels() {
    net::ChannelParams params;
    params.base_latency = sim::milliseconds(2);
    params.jitter = sim::Duration{0};
    return {std::make_shared<net::Channel>(kernel, params, util::Rng{1}),
            std::make_shared<net::Channel>(kernel, params, util::Rng{2})};
  }

  /// A connected dashboard client collecting everything on its push topic.
  struct Dashboard {
    std::unique_ptr<MqttClient> client;
    std::vector<protocol::Message> inbox;
  };

  Dashboard dashboard(const std::string& client_id) {
    Dashboard d;
    d.client = std::make_unique<MqttClient>(kernel, client_id);
    auto [up, down] = channels();
    d.client->connect(broker, up, down, [](bool) {});
    kernel.run();
    return d;
  }

  static void collect(Dashboard& d) {
    d.client->subscribe(protocol::topic_push(d.client->client_id()),
                        [&d](const MqttMessage& m) {
                          auto decoded = protocol::decode_any(m.payload);
                          ASSERT_TRUE(decoded.ok());
                          d.inbox.push_back(std::move(decoded.value()));
                        });
  }

  void subscribe(Dashboard& d, SubscribeRequest req) {
    d.client->publish(std::string(protocol::kTopicSubscribe),
                      protocol::seal(req), 1);
    kernel.run();
  }

  void ingest_fleet_and_close() {
    store::ingest_all(db, store::make_fleet(3, 40, 2, 13));
    db.ingest(store::watermark_record(30 * kSecond));
  }
};

TEST_F(SubscriptionFixture, SubscribeAckAndPushMatchColdQuery) {
  auto dash = dashboard("dash-1");
  collect(dash);
  kernel.run();

  SubscribeRequest req;
  req.client_id = "dash-1";
  req.subscription_id = 7;
  req.window_ns = kSecond;
  req.slide_ns = 0;      // tumbling
  req.lateness_ns = -1;  // service default
  req.include_per_device = true;
  subscribe(dash, req);

  ASSERT_EQ(dash.inbox.size(), 1u);
  const auto& ack = std::get<SubscribeAck>(dash.inbox[0]);
  EXPECT_TRUE(ack.accepted);
  EXPECT_EQ(ack.subscription_id, 7u);
  EXPECT_EQ(ack.anchor_ns, 0);
  EXPECT_EQ(service.active_subscriptions(), 1u);
  EXPECT_EQ(service.active_rollups(), 1u);

  ingest_fleet_and_close();
  service.pump();
  kernel.run();

  ASSERT_GT(dash.inbox.size(), 2u);
  const QueryEngine engine{db, QueryEngineOptions{1}};
  std::size_t pushes = 0;
  for (std::size_t i = 1; i < dash.inbox.size(); ++i) {
    const auto& push = std::get<RollupPush>(dash.inbox[i]);
    EXPECT_EQ(push.subscription_id, 7u);
    EXPECT_EQ(push.t1_ns - push.t0_ns, kSecond);
    // The decoded push must equal the cold fleet query bit-for-bit — the
    // f64 wire codec preserves exact IEEE-754 patterns.
    QuerySpec q;
    q.t0_ns = push.t0_ns;
    q.t1_ns = push.t1_ns;
    const auto cold = engine.aggregate(q);
    EXPECT_TRUE(push.merged == to_wire(cold.merged));
    EXPECT_EQ(push.device_count, cold.per_device.size());
    ASSERT_EQ(push.per_device.size(), cold.per_device.size());
    for (std::size_t d = 0; d < push.per_device.size(); ++d) {
      EXPECT_EQ(push.per_device[d].device, cold.per_device[d].first);
      EXPECT_TRUE(push.per_device[d].aggregate ==
                  to_wire(cold.per_device[d].second));
    }
    const auto bd = store::naive_breakdown(engine.scan(q));
    ASSERT_EQ(push.breakdown.size(), bd.size());
    auto it = bd.begin();
    for (const auto& wire : push.breakdown) {
      EXPECT_EQ(wire.network, it->first);
      EXPECT_EQ(wire.records, it->second.records);
      EXPECT_EQ(wire.energy_mwh, it->second.energy_mwh);
      ++it;
    }
    ++pushes;
  }
  EXPECT_EQ(service.stats().pushes_sent, pushes);
  EXPECT_EQ(service.stats().windows_pushed, pushes);
}

TEST_F(SubscriptionFixture, EqualSpecsShareOneRollup) {
  auto a = dashboard("dash-a");
  auto b = dashboard("dash-b");
  collect(a);
  collect(b);
  kernel.run();

  SubscribeRequest req;
  req.client_id = "dash-a";
  req.subscription_id = 1;
  req.window_ns = kSecond;
  subscribe(a, req);
  req.client_id = "dash-b";
  subscribe(b, req);

  EXPECT_EQ(service.active_subscriptions(), 2u);
  EXPECT_EQ(service.active_rollups(), 1u);  // shared backing rollup
  EXPECT_EQ(rollups.rollup_count(), 1u);

  // A different geometry gets its own rollup.
  req.client_id = "dash-a";
  req.subscription_id = 2;
  req.window_ns = 2 * kSecond;
  subscribe(a, req);
  EXPECT_EQ(service.active_rollups(), 2u);

  // Refcounting: the shared rollup survives the first unsubscribe.
  a.client->publish(std::string(protocol::kTopicSubscribe),
                    protocol::seal(Unsubscribe{1, "dash-a"}), 1);
  kernel.run();
  EXPECT_EQ(service.active_rollups(), 2u);
  b.client->publish(std::string(protocol::kTopicSubscribe),
                    protocol::seal(Unsubscribe{1, "dash-b"}), 1);
  kernel.run();
  EXPECT_EQ(service.active_rollups(), 1u);
  EXPECT_EQ(rollups.rollup_count(), 1u);
  EXPECT_EQ(service.stats().unsubscribes, 2u);
}

TEST_F(SubscriptionFixture, ResubscribeSameHandleReplaces) {
  auto dash = dashboard("dash-1");
  collect(dash);
  kernel.run();

  SubscribeRequest req;
  req.client_id = "dash-1";
  req.subscription_id = 4;
  req.window_ns = kSecond;
  subscribe(dash, req);
  req.window_ns = 2 * kSecond;
  subscribe(dash, req);

  EXPECT_EQ(service.active_subscriptions(), 1u);
  EXPECT_EQ(service.active_rollups(), 1u);  // old shape released
  ASSERT_EQ(dash.inbox.size(), 2u);
  EXPECT_TRUE(std::get<SubscribeAck>(dash.inbox[1]).accepted);
}

TEST_F(SubscriptionFixture, InvalidGeometryRejectedWithReason) {
  auto dash = dashboard("dash-1");
  collect(dash);
  kernel.run();

  SubscribeRequest req;
  req.client_id = "dash-1";
  req.subscription_id = 9;
  req.window_ns = 0;  // invalid
  subscribe(dash, req);

  ASSERT_EQ(dash.inbox.size(), 1u);
  const auto& ack = std::get<SubscribeAck>(dash.inbox[0]);
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(ack.reason, "invalid window geometry");
  EXPECT_EQ(service.stats().subscriptions_rejected, 1u);
  EXPECT_EQ(service.active_subscriptions(), 0u);

  req.window_ns = 10 * kSecond;
  req.slide_ns = 3 * kSecond;  // does not divide the width
  subscribe(dash, req);
  ASSERT_EQ(dash.inbox.size(), 2u);
  EXPECT_FALSE(std::get<SubscribeAck>(dash.inbox[1]).accepted);
  EXPECT_EQ(service.stats().subscriptions_rejected, 2u);
}

TEST_F(SubscriptionFixture, MalformedAndUnexpectedFramesCounted) {
  auto dash = dashboard("dash-1");
  kernel.run();

  // Garbage bytes: not even an envelope.
  dash.client->publish(std::string(protocol::kTopicSubscribe), {1, 2, 3}, 1);
  kernel.run();
  EXPECT_EQ(service.stats().malformed_frames, 1u);

  // A truncated but once-valid subscribe frame.
  SubscribeRequest req;
  req.client_id = "dash-1";
  req.subscription_id = 1;
  req.window_ns = kSecond;
  auto frame = protocol::seal(req);
  frame.resize(frame.size() - 3);
  dash.client->publish(std::string(protocol::kTopicSubscribe),
                       std::move(frame), 1);
  kernel.run();
  EXPECT_EQ(service.stats().malformed_frames, 2u);

  // A well-formed envelope of the wrong type for this topic.
  dash.client->publish(std::string(protocol::kTopicSubscribe),
                       protocol::seal(Beacon{"agg-1", 5}), 1);
  kernel.run();
  EXPECT_EQ(service.stats().unexpected_frames, 1u);

  EXPECT_EQ(service.active_subscriptions(), 0u);
  EXPECT_EQ(service.stats().subscriptions_accepted, 0u);
}

TEST_F(SubscriptionFixture, UnsubscribeStopsPushes) {
  auto dash = dashboard("dash-1");
  collect(dash);
  kernel.run();

  SubscribeRequest req;
  req.client_id = "dash-1";
  req.subscription_id = 2;
  req.window_ns = kSecond;
  subscribe(dash, req);
  dash.client->publish(std::string(protocol::kTopicSubscribe),
                       protocol::seal(Unsubscribe{2, "dash-1"}), 1);
  kernel.run();

  ingest_fleet_and_close();
  service.pump();
  kernel.run();

  ASSERT_EQ(dash.inbox.size(), 1u);  // the ack only, no pushes
  EXPECT_EQ(service.stats().pushes_sent, 0u);
  EXPECT_EQ(rollups.rollup_count(), 0u);
}

TEST_F(SubscriptionFixture, LocalSubscriptionsShareRollupsWithRemote) {
  std::vector<ClosedWindow> seen;
  RollupSpec spec;
  spec.window_ns = kSecond;
  spec.slide_ns = kSecond;
  spec.lateness_ns = 500 * kMs;  // matches the service default
  const std::uint64_t handle = service.subscribe_local(
      spec, [&seen](const ClosedWindow& w) { seen.push_back(w); });
  ASSERT_NE(handle, 0u);
  EXPECT_NE(service.backing_rollup(handle), 0u);

  // A remote subscription with the same canonical shape rides the same
  // rollup.
  auto dash = dashboard("dash-1");
  collect(dash);
  kernel.run();
  SubscribeRequest req;
  req.client_id = "dash-1";
  req.subscription_id = 1;
  req.window_ns = kSecond;
  req.lateness_ns = -1;  // service default, matching the local spec above
  subscribe(dash, req);
  EXPECT_EQ(service.active_rollups(), 1u);

  ingest_fleet_and_close();
  service.pump();
  kernel.run();

  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.size() + 1, dash.inbox.size());  // same windows + the ack
  EXPECT_EQ(service.stats().local_deliveries, seen.size());
  const QueryEngine engine{db, QueryEngineOptions{1}};
  for (const auto& w : seen) {
    store::expect_window_matches_cold(engine, spec, w, "local sub");
  }

  service.unsubscribe_local(handle);
  EXPECT_EQ(service.backing_rollup(handle), 0u);
  EXPECT_EQ(service.active_rollups(), 1u);  // remote still holds it
}

TEST_F(SubscriptionFixture, FanOutRidesOneWireFrame) {
  // Satellite: broker-side fan-out batching.  Three sessions subscribed to
  // the same topic receive one publish as one sent frame + two coalesced
  // copies — all three still delivered.
  auto a = dashboard("dev-a");
  auto b = dashboard("dev-b");
  auto c = dashboard("dev-c");
  int got = 0;
  for (auto* d : {&a, &b, &c}) {
    d->client->subscribe("emon/beacon", [&got](const MqttMessage&) { ++got; });
  }
  kernel.run();

  const auto before = broker.transport_stats();
  broker.publish_from_host(MqttMessage{"emon/beacon", {0xAB}, 0, "agg-1"});
  kernel.run();

  const auto& after = broker.transport_stats();
  EXPECT_EQ(got, 3);
  EXPECT_EQ(after.frames_sent - before.frames_sent, 1u);
  EXPECT_EQ(after.frames_coalesced - before.frames_coalesced, 2u);
  EXPECT_GT(after.bytes_coalesced, before.bytes_coalesced);
}

}  // namespace
}  // namespace emon::core
