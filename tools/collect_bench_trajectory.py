#!/usr/bin/env python3
"""Collect every BENCH_*.json produced by a CI run into one trajectory file.

Each bench binary (micro_store JSON smoke, fleet_scale, shard_scale,
query_scale, rollup_push, obs_overhead, serve_concurrent) writes its own
BENCH_<name>.json artifact.  This merges them into a single
bench_trajectory.json keyed by bench name, stamped with the commit and run
metadata CI exposes, so one artifact per run carries the whole performance
trajectory and plotting across runs needs no artifact archaeology.

Stdlib only (json/os/sys/glob) — runs on a bare CI python3.

Usage:
    python3 tools/collect_bench_trajectory.py [--dir DIR ...] [--out FILE]

Every --dir is scanned (non-recursively) for BENCH_*.json; later dirs win
on name collisions.  Defaults: --dir build --out bench_trajectory.json.
Files that fail to parse are recorded under "errors" rather than aborting
the collection — one broken bench must not discard the rest of the run's
trajectory.  Exits 1 only when no bench file was found at all.
"""

import argparse
import glob
import json
import os
import sys


def bench_name(path: str) -> str:
    base = os.path.basename(path)
    name = base[len("BENCH_"):] if base.startswith("BENCH_") else base
    return name[:-len(".json")] if name.endswith(".json") else name


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", action="append", default=[],
                        help="directory to scan for BENCH_*.json "
                             "(repeatable; default: build)")
    parser.add_argument("--out", default="bench_trajectory.json")
    args = parser.parse_args()
    dirs = args.dir or ["build"]

    benches = {}
    errors = {}
    for d in dirs:
        for path in sorted(glob.glob(os.path.join(d, "BENCH_*.json"))):
            name = bench_name(path)
            try:
                with open(path, encoding="utf-8") as f:
                    benches[name] = json.load(f)
            except (OSError, ValueError) as exc:
                errors[name] = "%s: %s" % (path, exc)

    if not benches and not errors:
        print("no BENCH_*.json found under: %s" % ", ".join(dirs),
              file=sys.stderr)
        return 1

    trajectory = {
        # CI metadata; empty strings locally, filled in by the workflow env.
        "commit": os.environ.get("GITHUB_SHA", ""),
        "ref": os.environ.get("GITHUB_REF", ""),
        "run_id": os.environ.get("GITHUB_RUN_ID", ""),
        "run_attempt": os.environ.get("GITHUB_RUN_ATTEMPT", ""),
        "benches": benches,
    }
    # Headline allocation-discipline numbers (bench/alloc_count.cpp), lifted
    # to the top so trajectory plots don't have to dig per-bench: the
    # steady-state allocs/record on the EMON_HOT ingest path (gated at 0)
    # and the cold per-device setup cost it amortizes.
    alloc = benches.get("alloc")
    if isinstance(alloc, dict):
        trajectory["summary"] = {
            "steady_allocs_per_record": alloc.get("steady_allocs_per_record"),
            "cold_allocs_per_device": alloc.get("cold_allocs_per_device"),
            "steady_zero_alloc": alloc.get("steady_zero_alloc"),
        }
    if errors:
        trajectory["errors"] = errors

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2, sort_keys=True)
        f.write("\n")
    print("wrote %s (%d benches%s)" % (
        args.out, len(benches),
        ", %d errors" % len(errors) if errors else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
