#!/usr/bin/env python3
"""emon_lint: concurrency/determinism/hot-path contract lint for emon.

Checks contracts the compiler cannot express (clang -Wthread-safety covers
the mutex-shaped ones; these are the epoch/owner-thread/determinism/
hot-path-shaped ones):

Concurrency rules:

  guard-escape   Values read through an epoch ReadGuard (SeriesView /
                 ShardIndex / SeriesRef, read_guard()/pin() results) must not
                 outlive the guard's lexical scope: no stores into members,
                 globals or out-params, no returning the raw snapshot
                 pointer, no use after the guard's scope closes.  Returning
                 the guard itself is fine — that transfers the pin.
  owner-thread   Methods annotated EMON_OWNER_THREAD may only be called from
                 functions that are themselves EMON_OWNER_THREAD, from
                 sanctioned worker bodies (EMON_OWNER_THREAD_CONTEXT), or
                 from lambdas lexically inside either.
  bare-atomic    Every std::atomic access outside src/obs/ must spell an
                 explicit std::memory_order (seq_cst included — the point is
                 that the author chose one).
  retire-order   A retire() on the epoch domain must be preceded, in the same
                 function, by the store that republishes the successor —
                 retiring before publishing would free a snapshot readers can
                 still reach.

Determinism rules (every sim/serving path must be bit-reproducible; scoped
to everything outside src/obs/ and bench/ — observability and harnesses may
read real clocks, the simulation may not):

  wall-clock     steady_clock/system_clock/high_resolution_clock reads must
                 carry EMON_WALL_CLOCK_OK plus a justification comment.
  unordered-iter-escape
                 A range-for over a std::unordered_{map,set} whose loop body
                 lets results escape (wire encode, Trace append, push into a
                 returned/out-param container) must be annotated
                 EMON_ORDER_INSENSITIVE or rewritten over a sorted view —
                 hash iteration order is not part of the contract.
  unseeded-rng   No std::random_device, std::rand/srand, or
                 default-constructed standard engines outside util/rng; all
                 randomness flows from util::SeedSequence named streams.
  ptr-order      No ordering comparisons between raw pointers and no
                 std::map/std::set keyed on pointer values — allocation
                 addresses vary run to run.

Hot-path rules (functions annotated EMON_HOT, lambdas inside included — the
per-record ingest fast path; tests/test_hot_alloc.cpp is the paired runtime
witness):

  hot-alloc      No `new`, make_unique/make_shared, or named allocating
                 calls (push_back/resize/insert/...) on containers not
                 marked EMON_PREALLOCATED.
  hot-throw      No `throw`, and no calls to functions whose definitions
                 throw (plus the known-throwing std:: names: at, stoi, ...).
  hot-lock       No mutex acquisition: no lock_guard/unique_lock/
                 scoped_lock, no .lock()/.try_lock().

Engines (--engine auto|libclang|textual):

  libclang   Walks the AST of every TU in compile_commands.json via
             clang.cindex (python3-clang).  Function extents, annotations and
             owner-thread call targets are resolved exactly.
  textual    Stdlib-only fallback for environments without libclang.  Function
             extents come from a brace-level scan; owner-thread calls are
             matched by method name, skipping names that are also declared
             without the annotation elsewhere (the libclang engine resolves
             those precisely).

Rule evaluation is shared: both engines produce the same FunctionModel and
the same source-level scans run over each body, so the fixture self-tests
(tests/lint/) pin identical verdicts for both.

Usage:
  tools/emon_lint.py --root src --compdb build [--baseline FILE]
  tools/emon_lint.py --self-test tests/lint
Exit status: 0 when every finding is baselined (or none), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

OWNER = "EMON_OWNER_THREAD"
CONTEXT = "EMON_OWNER_THREAD_CONTEXT"
HOT = "EMON_HOT"
WALL_OK = "EMON_WALL_CLOCK_OK"
ORDER_OK = "EMON_ORDER_INSENSITIVE"
PREALLOC = "EMON_PREALLOCATED"
RULES = ("guard-escape", "owner-thread", "bare-atomic", "retire-order",
         "wall-clock", "unordered-iter-escape", "unseeded-rng", "ptr-order",
         "hot-alloc", "hot-throw", "hot-lock")

GUARD_TYPES = ("ReadGuard",)
VIEW_TYPES = ("SeriesView", "ShardIndex", "SeriesRef")
GUARD_MAKERS = (".pin()", "read_guard()")
CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "switch", "do", "try", "catch", "return",
}
CONTAINER_KEYWORDS = {"namespace", "class", "struct", "union", "enum"}


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    function: str
    message: str

    def key(self) -> str:
        # Line numbers drift; the baseline keys on path:rule:function.
        return f"{self.path}:{self.rule}:{self.function}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] {self.function}: "
                f"{self.message}")


@dataclass
class FunctionModel:
    path: str
    name: str                      # display name, Class::method when known
    start_line: int                # line of the body's opening brace
    header: str                    # masked text of the signature
    body: str                      # masked text inside the braces
    body_offset_line: int          # line number of body[0]
    annotations: set = field(default_factory=set)
    # libclang only: [(line, callee_qname)] for calls whose target carries
    # EMON_OWNER_THREAD.  None means "unresolved — use the textual name scan".
    owner_calls: list | None = None


# ---------------------------------------------------------------------------
# Source masking and structural scan (shared by both engines)
# ---------------------------------------------------------------------------

def mask_source(text: str) -> str:
    """Blanks comments, string/char literals and preprocessor lines, keeping
    every newline so offsets and line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                # A ' directly after an alphanumeric is a C++14 digit
                # separator (100'000, 0xFF'FF), not a char literal.
                if i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
                    out.append(" ")
                    i += 1
                    continue
                state = "char"
                out.append(" ")
                i += 1
                continue
            if c == "#" and (i == 0 or text[i - 1] == "\n"):
                state = "preproc"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "preproc":
            if c == "\n":
                # Line continuations keep the directive alive.
                if out and out[-1] == " " and text[i - 1] == "\\":
                    out.append("\n")
                    i += 1
                    continue
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
    return "".join(out)


_NAME_QUALIFIED = re.compile(r"([A-Za-z_~][\w]*(?:::[A-Za-z_~][\w]*)+)\s*\(")
_NAME_PLAIN = re.compile(r"\b([A-Za-z_~][\w]*)\s*\(")


def header_function_name(header: str) -> str | None:
    """Extracts the function name from a definition header, or None when the
    header is not function-shaped."""
    stripped = header.strip()
    if not stripped or "(" not in stripped:
        return None
    first_word = re.match(r"[A-Za-z_~][\w]*", stripped)
    if first_word and first_word.group(0) in CONTROL_KEYWORDS:
        return None
    words = set(re.findall(r"[A-Za-z_]\w*", stripped))
    if words & CONTAINER_KEYWORDS:
        return None
    # Lambdas: capture list immediately before the parameter list.
    if re.search(r"\]\s*\(", stripped.split("(", 1)[0] + "("):
        return None
    if stripped.endswith("="):
        return None
    m = _NAME_QUALIFIED.search(stripped)
    if m:
        return m.group(1)
    for m in _NAME_PLAIN.finditer(stripped):
        name = m.group(1)
        if name not in CONTROL_KEYWORDS and not name.startswith("EMON_"):
            return m.group(1)
    return None


_TRAILING_QUALIFIERS = {
    "const", "noexcept", "override", "final", "mutable", "try",
}


def _opens_function_body(masked: str, brace_off: int, header: str) -> bool:
    """Distinguishes a function body's `{` from brace-init / aggregate-init /
    lambda bodies (member-init lists with immediately-invoked lambdas are the
    hard case).  A function body's brace follows `)`, a `}` (brace-init of
    the last ctor-init entry), or a trailing qualifier / EMON_* macro —
    never a bare identifier (`AnomalyParams{...}`) or `]` (lambda intro)."""
    prev = masked[:brace_off].rstrip()[-1:]
    if prev in (")", "}"):
        return True
    trailing = re.search(r"([A-Za-z_]\w*)\s*$", header)
    if trailing:
        word = trailing.group(1)
        return word in _TRAILING_QUALIFIERS or word.startswith("EMON_")
    return False


@dataclass
class StructScan:
    functions: list
    class_decl_statements: list    # (class_name, statement_text, line)


def scan_structure(path: str, masked: str) -> StructScan:
    """One pass over a masked file: top-level function definitions (with
    class-qualified display names) plus every declaration statement inside a
    class body (for the annotation/ambiguity tables)."""
    functions = []
    decls = []
    stack = []            # (kind, name) per open brace
    boundary = 0          # offset just past the last ; { or }
    i, n = 0, len(masked)
    in_function_depth = None
    while i < n:
        c = masked[i]
        if c == ";":
            if in_function_depth is None:
                stmt = masked[boundary:i]
                cls = next((nm for kd, nm in reversed(stack)
                            if kd == "class"), None)
                if cls and "(" in stmt:
                    decls.append((cls, stmt, 1 + masked.count("\n", 0, i)))
            boundary = i + 1
        elif c == "{":
            header = masked[boundary:i]
            kind, name = "other", None
            words = re.findall(r"[A-Za-z_]\w*", header)
            if in_function_depth is not None:
                kind = "nested"
            elif re.search(r"\b(class|struct|union)\s+([A-Za-z_]\w*)[^;{]*$",
                           header):
                m = re.search(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)",
                              header)
                kind, name = "class", m.group(1)
            elif "namespace" in words or "enum" in words:
                kind = "container"
            else:
                fn = header_function_name(header)
                if fn is not None and _opens_function_body(masked, i, header):
                    kind, name = "function", fn
            stack.append((kind, name))
            if kind == "function":
                in_function_depth = len(stack)
                fn_start = i
                fn_header_off = boundary
            boundary = i + 1
        elif c == "}":
            if stack:
                kind, name = stack.pop()
                if (kind == "function"
                        and in_function_depth == len(stack) + 1):
                    header = masked[fn_header_off:fn_start]
                    cls = next((nm for kd, nm in reversed(stack)
                                if kd == "class"), None)
                    display = name
                    if cls and "::" not in name:
                        display = f"{cls}::{name}"
                    functions.append(FunctionModel(
                        path=path,
                        name=display,
                        start_line=1 + masked.count("\n", 0, fn_start),
                        header=header,
                        body=masked[fn_start + 1:i],
                        body_offset_line=1 + masked.count("\n", 0,
                                                          fn_start + 1),
                    ))
                    in_function_depth = None
            boundary = i + 1
        i += 1
    return StructScan(functions=functions, class_decl_statements=decls)


# ---------------------------------------------------------------------------
# Annotation tables (textual; the libclang engine overrides call targets)
# ---------------------------------------------------------------------------

@dataclass
class AnnotationTable:
    qualified: dict                # "Class::method" -> {OWNER|CONTEXT}
    owner_bare: set                # bare names safe to match textually
    ambiguous: set                 # bare owner names shadowed elsewhere


def statement_annotations(stmt: str) -> set:
    out = set()
    if re.search(r"\bEMON_OWNER_THREAD_CONTEXT\b", stmt):
        out.add(CONTEXT)
    if re.search(r"\bEMON_OWNER_THREAD\b(?!_)", stmt):
        out.add(OWNER)
    if re.search(r"\bEMON_HOT\b", stmt):
        out.add(HOT)
    if re.search(r"\bEMON_WALL_CLOCK_OK\b", stmt):
        out.add(WALL_OK)
    if re.search(r"\bEMON_ORDER_INSENSITIVE\b", stmt):
        out.add(ORDER_OK)
    return out


def build_annotation_table(scans: list) -> AnnotationTable:
    # Pass 1: every annotated declaration (class-body decls carry the macro;
    # out-of-line definitions inherit through their qualified name).
    qualified: dict = {}
    owner_names: set = set()
    entries = []          # (qualified_or_bare_name, annotations)
    for scan in scans:
        for cls, stmt, _line in scan.class_decl_statements:
            name = header_function_name(stmt)
            if name is None:
                continue
            bare = name.split("::")[-1]
            entries.append((f"{cls}::{bare}", statement_annotations(stmt)))
        for fn in scan.functions:
            entries.append((fn.name, statement_annotations(fn.header)))
    for qname_, anns in entries:
        if anns:
            qualified.setdefault(qname_, set()).update(anns)
            if OWNER in anns:
                owner_names.add(qname_.split("::")[-1])
    # Pass 2: a bare owner name is ambiguous when some *other* method (one
    # whose qualified name is not annotated) shares it — the textual engine
    # cannot resolve the receiver type, so it skips those; the libclang
    # engine checks them precisely.
    ambiguous = set()
    for qname_, anns in entries:
        bare = qname_.split("::")[-1]
        if bare not in owner_names:
            continue
        if qualified.get(qname_):
            continue       # a decl or definition of an annotated method
        ambiguous.add(bare)
    return AnnotationTable(qualified=qualified,
                           owner_bare=owner_names - ambiguous,
                           ambiguous=ambiguous)


def function_annotations(fn: FunctionModel, table: AnnotationTable) -> set:
    anns = set(fn.annotations)
    anns |= statement_annotations(fn.header)
    anns |= table.qualified.get(fn.name, set())
    return anns


# ---------------------------------------------------------------------------
# Rule implementations (shared source-level scans)
# ---------------------------------------------------------------------------

def _line_of(fn: FunctionModel, offset: int) -> int:
    return fn.body_offset_line + fn.body.count("\n", 0, offset)


def check_guard_escape(fn: FunctionModel) -> list:
    body = fn.body
    guard_decl = None
    for m in re.finditer(
            r"\b(?:%s)\s+(\w+)\s*[=({]|\b(\w+)\s*=\s*[^;=]*?(?:%s)"
            % ("|".join(GUARD_TYPES),
               "|".join(re.escape(g) for g in GUARD_MAKERS)), body):
        guard_decl = (m.group(1) or m.group(2), m.start())
        break
    if guard_decl is None:
        return []
    guard_var, guard_off = guard_decl

    # Lexical scope of the guard: from its declaration to the close of the
    # brace scope it was declared in.
    depth = 0
    scope_end = len(body)
    for i in range(guard_off, len(body)):
        if body[i] == "{":
            depth += 1
        elif body[i] == "}":
            if depth == 0:
                scope_end = i
                break
            depth -= 1

    view_vars = []
    type_re = re.compile(
        r"\b(?:[\w:]*(?:%s))\b[\w:<>]*[\s*&]+(\w+)\s*[=;({]"
        % "|".join(VIEW_TYPES))
    for m in type_re.finditer(body):
        if m.start() >= guard_off:
            view_vars.append(m.group(1))
    findings = []

    def flag(off: int, msg: str) -> None:
        findings.append(Finding("guard-escape", fn.path, _line_of(fn, off),
                                fn.name, msg))

    view_alt = "|".join(re.escape(v) for v in view_vars) if view_vars else None

    # 1. Stores into members/globals/out-params of guard-derived values.
    sink_re = re.compile(
        r"(?:this->\w+|\b[A-Za-z]\w*_|\bg_\w+|\*\s*\w+)\s*=(?!=)\s*([^;]*)")
    for m in sink_re.finditer(body, guard_off):
        if m.start() > scope_end:
            break
        if m.group(0).lstrip().startswith("*"):
            # `*out = ...` is a sink; `Type* var = ...` is a declaration.
            prev = body[:m.start()].rstrip()[-1:]
            if prev and (prev.isalnum() or prev in "_>:)"):
                continue
        rhs = m.group(1)
        leaks = any(t in rhs for t in VIEW_TYPES) or any(
            g in rhs for g in GUARD_MAKERS)
        if not leaks and view_alt:
            leaks = re.search(r"\b(?:%s)\b" % view_alt, rhs) is not None
        if leaks:
            flag(m.start(), "guard-scoped view value stored beyond the "
                 "ReadGuard's scope (member/global/out-param)")

    # 2. Returning the raw snapshot (returning the guard itself is allowed —
    #    it transfers the pin).
    if view_alt:
        ret_re = re.compile(
            r"\breturn\s+(?:std::move\(\s*)?(?:%s)\b\s*\)?\s*;" % view_alt)
        for m in ret_re.finditer(body):
            if guard_off < m.start():
                flag(m.start(), "returns a raw epoch-protected snapshot "
                     "value; copy the data out or return the guard with it")
    for m in re.finditer(r"\breturn\s+&[^;]*;", body):
        seg = m.group(0)
        if guard_off < m.start() and (
                any(t in seg for t in VIEW_TYPES)
                or (view_alt and re.search(r"\b(?:%s)\b" % view_alt, seg))):
            flag(m.start(), "returns the address of guard-scoped data")

    # 3. Uses of guard-scoped view variables after the guard's scope closed.
    if view_alt:
        use_re = re.compile(r"\b(?:%s)\b" % view_alt)
        for m in use_re.finditer(body, scope_end):
            # Skip fresh declarations of a same-named variable.
            decl = type_re.search(body, max(scope_end, m.start() - 80))
            if decl and decl.end() >= m.start() >= decl.start():
                continue
            flag(m.start(), "epoch-protected view value used after its "
                 "ReadGuard's scope closed")
            break
    return findings


def check_owner_thread(fn: FunctionModel, table: AnnotationTable) -> list:
    anns = function_annotations(fn, table)
    if anns & {OWNER, CONTEXT}:
        return []          # sanctioned body: lambdas inside inherit this
    findings = []
    if fn.owner_calls is not None:       # libclang-resolved
        for line, callee in fn.owner_calls:
            findings.append(Finding(
                "owner-thread", fn.path, line, fn.name,
                f"calls owner-thread method {callee} from a function that "
                f"is neither EMON_OWNER_THREAD nor a sanctioned "
                f"EMON_OWNER_THREAD_CONTEXT body"))
        return findings
    if not table.owner_bare:
        return []
    call_re = re.compile(r"(?:\.|->|\b)(%s)\s*\("
                         % "|".join(sorted(table.owner_bare)))
    for m in call_re.finditer(fn.body):
        findings.append(Finding(
            "owner-thread", fn.path, _line_of(fn, m.start()), fn.name,
            f"calls owner-thread method {m.group(1)}() from a function that "
            f"is neither EMON_OWNER_THREAD nor a sanctioned "
            f"EMON_OWNER_THREAD_CONTEXT body"))
    return findings


# `test_and_set`/`clear` (std::atomic_flag) are deliberately absent: `clear`
# collides with every container, and the codebase has no atomic_flag.
_ATOMIC_CALL = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")


def check_bare_atomic(fn: FunctionModel, atomic_names: set) -> list:
    if f"{os.sep}obs{os.sep}" in fn.path or "/obs/" in fn.path:
        return []
    findings = []
    body = fn.body
    for m in _ATOMIC_CALL.finditer(body):
        # Argument list of the call: scan to the matching close paren.
        depth, j = 1, m.end()
        while j < len(body) and depth:
            if body[j] == "(":
                depth += 1
            elif body[j] == ")":
                depth -= 1
            j += 1
        args = body[m.end():j - 1]
        if "memory_order" not in args:
            findings.append(Finding(
                "bare-atomic", fn.path, _line_of(fn, m.start()), fn.name,
                f".{m.group(1)}() without an explicit std::memory_order"))
    if atomic_names:
        op_re = re.compile(
            r"(?:\+\+|--)\s*(%(n)s)\b|\b(%(n)s)\s*(?:\+\+|--|[+\-|&^]?=(?!=))"
            % {"n": "|".join(re.escape(a) for a in sorted(atomic_names))})
        for m in op_re.finditer(body):
            name = m.group(1) or m.group(2)
            tail = body[m.end():m.end() + 1]
            findings.append(Finding(
                "bare-atomic", fn.path, _line_of(fn, m.start()), fn.name,
                f"operator access on std::atomic '{name}' (implicit seq_cst);"
                f" spell the memory order via load/store/fetch_*"))
            del tail
    return findings


def collect_atomic_names(masked_files: dict) -> set:
    """Member/global std::atomic variables that operator-form accesses can be
    matched against by name.  Restricted to the codebase's member/global
    naming (trailing underscore or g_ prefix) to avoid colliding with local
    variables that reuse short names."""
    names = set()
    decl_re = re.compile(r"\bstd::atomic(?:<[^;{}=]*>|_flag)?\s+(\w+)\s*[{=;]")
    for _path, masked in masked_files.items():
        for m in decl_re.finditer(masked):
            name = m.group(1)
            if name.endswith("_") or name.startswith("g_"):
                names.add(name)
    return names


def check_retire_order(fn: FunctionModel) -> list:
    if fn.path.endswith("mvcc.hpp"):
        return []          # the domain's own implementation
    body = fn.body
    findings = []
    first_store = None
    m = re.search(r"\.\s*store\s*\(", body)
    if m:
        first_store = m.start()
    for m in re.finditer(r"(?:\.|->)\s*retire\s*\(", body):
        if first_store is None or m.start() < first_store:
            findings.append(Finding(
                "retire-order", fn.path, _line_of(fn, m.start()), fn.name,
                "retire() without a preceding republish store in this "
                "function — readers can still load the retired snapshot"))
    return findings


# ---------------------------------------------------------------------------
# Determinism rules (wall-clock, unordered-iter-escape, unseeded-rng,
# ptr-order) — scoped to everything outside src/obs/ and bench/
# ---------------------------------------------------------------------------

def in_determinism_scope(path: str) -> bool:
    norm = path.replace(os.sep, "/")
    for excluded in ("obs", "bench"):
        if f"/{excluded}/" in norm or norm.startswith(f"{excluded}/"):
            return False
    return True


def _header_line_of(fn: FunctionModel, offset: int) -> int:
    header_start = fn.start_line - fn.header.count("\n")
    return header_start + fn.header.count("\n", 0, offset)


_WALL_CLOCK = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(")


def check_wall_clock(fn: FunctionModel, table: AnnotationTable) -> list:
    if not in_determinism_scope(fn.path):
        return []
    if WALL_OK in function_annotations(fn, table):
        return []
    findings = []
    # The header carries the ctor member-init list, where wall clocks love
    # to hide (`: wall_start_(steady_clock::now())`).
    for text, line_of in ((fn.header, lambda o: _header_line_of(fn, o)),
                          (fn.body, lambda o: _line_of(fn, o))):
        for m in _WALL_CLOCK.finditer(text):
            findings.append(Finding(
                "wall-clock", fn.path, line_of(m.start()), fn.name,
                f"{m.group(1)}::now() in sim/serving code; a wall-clock "
                f"read can leak into deterministic results — route it "
                f"through the obs layer or annotate EMON_WALL_CLOCK_OK "
                f"with a justification"))
    return findings


_RANGE_FOR = re.compile(r"\bfor\s*\(")
# Loop bodies that let iteration order escape: appends into containers
# (returned / out-param / member — the textual engine cannot tell which, and
# a local that is later returned escapes too), wire encodes, trace appends,
# sends/publishes, and returns computed inside the loop.
_ESCAPE_SINK = re.compile(
    r"(?:\.|->)\s*(push_back|emplace_back|emplace|insert|try_emplace|append|"
    r"add_point|record|encode|write|send|publish|push)\s*\(|\breturn\b")


def _range_for_spans(body: str):
    """Yields (head_start, iterated_expr, body_text) for every range-for."""
    for m in _RANGE_FOR.finditer(body):
        depth, j = 1, m.end()
        while j < len(body) and depth:
            if body[j] == "(":
                depth += 1
            elif body[j] == ")":
                depth -= 1
            j += 1
        head = body[m.end():j - 1]
        # Range-for iff the head has a lone `:` (skip `::` scope operators;
        # a classic for-loop has only `;`s).
        expr = None
        k = 0
        while k < len(head):
            if head[k] == ":":
                if k + 1 < len(head) and head[k + 1] == ":":
                    k += 2
                    continue
                expr = head[k + 1:]
                break
            k += 1
        if expr is None:
            continue
        # Loop body: the following brace block, or statement up to `;`.
        k = j
        while k < len(body) and body[k] in " \t\n":
            k += 1
        if k < len(body) and body[k] == "{":
            depth, e = 1, k + 1
            while e < len(body) and depth:
                if body[e] == "{":
                    depth += 1
                elif body[e] == "}":
                    depth -= 1
                e += 1
            yield m.start(), expr, body[k + 1:e - 1]
        else:
            e = body.find(";", k)
            yield m.start(), expr, body[k:e if e >= 0 else len(body)]


def check_unordered_iter(fn: FunctionModel, table: AnnotationTable,
                         unordered_names: set) -> list:
    if not in_determinism_scope(fn.path):
        return []
    if ORDER_OK in function_annotations(fn, table):
        return []
    findings = []
    name_re = (re.compile(r"\b(?:%s)\b" % "|".join(
        re.escape(n) for n in sorted(unordered_names)))
        if unordered_names else None)
    for off, expr, loop_body in _range_for_spans(fn.body):
        iterates_unordered = ("unordered_" in expr
                              or (name_re and name_re.search(expr)))
        if not iterates_unordered:
            continue
        sink = _ESCAPE_SINK.search(loop_body)
        if not sink:
            continue
        findings.append(Finding(
            "unordered-iter-escape", fn.path, _line_of(fn, off), fn.name,
            f"range-for over unordered container "
            f"'{expr.strip()[:40]}' lets hash iteration order escape "
            f"(sink: '{sink.group(0).strip()[:24]}'); iterate a sorted "
            f"view or annotate EMON_ORDER_INSENSITIVE with a proof "
            f"sketch"))
    return findings


def collect_unordered_names(masked_files: dict) -> tuple:
    """Names of declared std::unordered_{map,set} variables: per-file (any
    name, locals included) plus a global set restricted to the codebase's
    member/global naming (trailing underscore / g_ prefix) so that .cpp
    files see the members their headers declare."""
    decl_re = re.compile(
        r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*"
        r"<[^;{}=]*>\s+(\w+)\s*[;{=(]")
    per_file: dict = {}
    global_members: set = set()
    for path, masked in masked_files.items():
        names = set(decl_re.findall(masked))
        per_file[os.path.relpath(path)] = names
        global_members |= {n for n in names
                           if n.endswith("_") or n.startswith("g_")}
    return per_file, global_members


_RNG_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*random_device\b"),
     "std::random_device is non-deterministic"),
    (re.compile(r"\bstd\s*::\s*s?rand\s*\("),
     "std::rand/srand draws from hidden global state"),
    (re.compile(
        r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
        r"default_random_engine|ranlux(?:24|48)(?:_base)?|knuth_b)\s+"
        r"\w+\s*(?:;|\{\s*\}|\(\s*\))"),
     "default-constructed standard engine (fixed but undeclared seed)"),
)


def check_unseeded_rng(fn: FunctionModel) -> list:
    if not in_determinism_scope(fn.path):
        return []
    if "util/rng" in fn.path.replace(os.sep, "/"):
        return []          # the sanctioned generator's own implementation
    findings = []
    for pattern, why in _RNG_PATTERNS:
        for m in pattern.finditer(fn.body):
            findings.append(Finding(
                "unseeded-rng", fn.path, _line_of(fn, m.start()), fn.name,
                f"{why}; draw from a util::SeedSequence named stream "
                f"instead"))
    return findings


_PTR_KEYED_CONTAINER = re.compile(
    r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?"
    r"[\w:]+(?:\s*<[^<>]*>)?\s*(?:const\s*)?\*")
_PTR_LESS = re.compile(r"\bstd\s*::\s*less\s*<[^<>]*\*\s*>")


def check_ptr_order_file(path: str, masked: str) -> list:
    """File-level half of ptr-order: ordered containers keyed on raw
    pointers, wherever they are declared (class members included — both
    engines share this scan, so verdicts stay identical)."""
    if not in_determinism_scope(path):
        return []
    findings = []
    for pattern in (_PTR_KEYED_CONTAINER, _PTR_LESS):
        for m in pattern.finditer(masked):
            findings.append(Finding(
                "ptr-order", os.path.relpath(path),
                1 + masked.count("\n", 0, m.start()), "(file)",
                "ordered container keyed on a raw pointer value; "
                "allocation addresses vary run to run — key on a stable "
                "id (ordinal, device id) instead"))
    return findings


_PTR_DECL = re.compile(
    r"\b(?:auto|[A-Za-z_]\w*(?:::\w+)*(?:<[^<>;]*>)?)\s*\*\s*(\w+)\s*[=;]")
_PTR_PARAM = re.compile(r"\*\s*(\w+)\s*[,)=]")


def check_ptr_order(fn: FunctionModel) -> list:
    """Function-level half of ptr-order: ordering comparisons between two
    variables both declared as raw pointers in this function."""
    if not in_determinism_scope(fn.path):
        return []
    ptr_names = set(_PTR_DECL.findall(fn.body))
    ptr_names |= set(_PTR_PARAM.findall(fn.header))
    if len(ptr_names) < 1:
        return []
    findings = []
    cmp_re = re.compile(
        r"\b(%(n)s)\b\s*(?:<|>|<=|>=)\s*\b(%(n)s)\b"
        % {"n": "|".join(re.escape(n) for n in sorted(ptr_names))})
    for m in cmp_re.finditer(fn.body):
        findings.append(Finding(
            "ptr-order", fn.path, _line_of(fn, m.start()), fn.name,
            f"ordering comparison between raw pointers '{m.group(1)}' and "
            f"'{m.group(2)}'; pointer order is allocation order — compare "
            f"stable ids instead"))
    return findings


# ---------------------------------------------------------------------------
# Hot-path rules (hot-alloc, hot-throw, hot-lock) — EMON_HOT functions only
# ---------------------------------------------------------------------------

_HOT_ALLOC_CALLS = (
    "push_back", "emplace_back", "push_front", "emplace_front", "resize",
    "reserve", "insert", "emplace", "append", "assign", "push",
)
# try_emplace is deliberately absent: the codebase uses it as
# lookup-or-create, which allocates only on the first-seen (cold) branch.
_HOT_ALLOC_CALL_RE = re.compile(
    r"(\w+)\s*(?:\.|->)\s*(%s)\s*\(" % "|".join(_HOT_ALLOC_CALLS))
_HOT_NEW_RE = re.compile(r"\bnew\b")
_HOT_MAKE_RE = re.compile(r"\bstd\s*::\s*make_(?:unique|shared)\b")
_HOT_THROW_RE = re.compile(r"\bthrow\b")
_HOT_LOCK_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"LockGuard|UniqueLock)\b\s*[<({]|"
    # Raw .lock()/.try_lock() calls only count when the receiver *names* a
    # mutex (mutex/mtx/mu/lock substrings) — weak_ptr::lock() promotion is a
    # different verb entirely and is allocation-free / wait-free.
    r"\b(?:\w*(?:[Mm]utex|mtx|[Ll]ock)\w*|mu|mu_|\w+_mu|\w+_mu_)"
    r"\s*(?:\.|->)\s*(?:lock|try_lock|lock_shared|try_lock_shared)\s*\(")

# std:: calls that throw by contract (bounds-checked access, parsing).
_KNOWN_THROWING = {"at", "stoi", "stol", "stoll", "stoul", "stoull", "stod",
                   "stof"}


def collect_throwing_names(scans: list) -> set:
    """Bare names of functions whose definitions contain a `throw`,
    ambiguity-pruned: a name also defined somewhere without throwing is
    skipped (the textual engine cannot resolve the receiver type), then the
    known-throwing std:: names are added back unconditionally."""
    throwing: set = set()
    clean: set = set()
    for scan in scans:
        for fn in scan.functions:
            bare = fn.name.split("::")[-1]
            if _HOT_THROW_RE.search(fn.body):
                throwing.add(bare)
            else:
                clean.add(bare)
    return (throwing - clean) | _KNOWN_THROWING


def collect_prealloc_names(masked_files: dict) -> set:
    """Variable names carrying EMON_PREALLOCATED (either placement:
    `std::vector<T> name EMON_PREALLOCATED;` or
    `EMON_PREALLOCATED std::vector<T> name;`)."""
    names: set = set()
    before = re.compile(r"\b(\w+)\s+EMON_PREALLOCATED\b")
    after = re.compile(r"\bEMON_PREALLOCATED\b[^;{}()=]*?(\w+)\s*[;{=]")
    for _path, masked in masked_files.items():
        names |= set(before.findall(masked))
        names |= set(after.findall(masked))
    names.discard("EMON_PREALLOCATED")
    return names


def check_hot_path(fn: FunctionModel, table: AnnotationTable,
                   prealloc_names: set, throwing_names: set) -> list:
    anns = function_annotations(fn, table)
    if HOT not in anns:
        return []
    body = fn.body
    findings = []

    def flag(rule: str, off: int, msg: str) -> None:
        findings.append(Finding(rule, fn.path, _line_of(fn, off), fn.name,
                                msg))

    # hot-alloc ------------------------------------------------------------
    for m in _HOT_NEW_RE.finditer(body):
        flag("hot-alloc", m.start(),
             "`new` on an EMON_HOT path; allocate off the hot path and "
             "reuse (see EMON_PREALLOCATED)")
    for m in _HOT_MAKE_RE.finditer(body):
        flag("hot-alloc", m.start(),
             "make_unique/make_shared on an EMON_HOT path")
    for m in _HOT_ALLOC_CALL_RE.finditer(body):
        if m.group(1) in prealloc_names:
            continue
        flag("hot-alloc", m.start(),
             f"allocating call .{m.group(2)}() on '{m.group(1)}' inside an "
             f"EMON_HOT function; mark the container EMON_PREALLOCATED "
             f"(capacity established off the hot path) or move the call "
             f"to a cold helper")

    # hot-throw ------------------------------------------------------------
    for m in _HOT_THROW_RE.finditer(body):
        flag("hot-throw", m.start(),
             "`throw` on an EMON_HOT path; report through a counter or "
             "status return instead")
    if throwing_names:
        call_re = re.compile(
            r"(?:\.|->|\b)(%s)\s*\("
            % "|".join(re.escape(n) for n in sorted(throwing_names)))
        for m in call_re.finditer(body):
            flag("hot-throw", m.start(),
                 f"call to throwing function {m.group(1)}() on an "
                 f"EMON_HOT path")

    # hot-lock -------------------------------------------------------------
    for m in _HOT_LOCK_RE.finditer(body):
        flag("hot-lock", m.start(),
             "mutex acquisition on an EMON_HOT path; the ingest fast path "
             "is single-writer by design — route cross-thread hand-off "
             "through the bounded queue")
    return findings


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------

def iter_source_files(root: str) -> list:
    out = []
    for dirpath, _dirs, files in os.walk(root):
        for f in sorted(files):
            if f.endswith((".hpp", ".cpp", ".h", ".cc")):
                out.append(os.path.join(dirpath, f))
    return sorted(out)


def textual_models(paths: list):
    masked_files = {}
    scans = []
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            masked = mask_source(f.read())
        masked_files[path] = masked
        scans.append(scan_structure(path, masked))
    return masked_files, scans


def libclang_models(paths: list, compdb_dir: str | None, extra_args: list):
    """AST-backed models.  Only function extents, annotations and resolved
    owner-thread call targets come from the AST; the per-body source scans
    are shared with the textual engine."""
    import clang.cindex as ci
    lib = os.environ.get("EMON_LIBCLANG")
    if lib:
        ci.Config.set_library_file(lib)
    index = ci.Index.create()

    def compile_args(path):
        if compdb_dir:
            try:
                db = ci.CompilationDatabase.fromDirectory(compdb_dir)
                cmds = db.getCompileCommands(path)
                if cmds:
                    args = list(cmds[0].arguments)[1:]
                    out, skip = [], False
                    for a in args:
                        if skip:
                            skip = False
                            continue
                        if a in ("-c", path) or a.endswith(path):
                            continue
                        if a == "-o":
                            skip = True
                            continue
                        out.append(a)
                    return out
            except ci.CompilationDatabaseError:
                pass
        return ["-std=c++20"] + extra_args

    wanted = {os.path.abspath(p) for p in paths}
    models: dict = {}
    fn_kinds = {
        ci.CursorKind.CXX_METHOD, ci.CursorKind.FUNCTION_DECL,
        ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
        ci.CursorKind.FUNCTION_TEMPLATE,
    }

    annotate_spellings = {
        "emon::owner_thread": OWNER,
        "emon::owner_thread_context": CONTEXT,
        "emon::hot": HOT,
        "emon::wall_clock_ok": WALL_OK,
        "emon::order_insensitive": ORDER_OK,
    }

    def annotations_of(cursor) -> set:
        anns = set()
        for ch in cursor.get_children():
            if ch.kind == ci.CursorKind.ANNOTATE_ATTR:
                mapped = annotate_spellings.get(ch.spelling)
                if mapped:
                    anns.add(mapped)
        return anns

    def decl_annotations(cursor) -> set:
        anns = annotations_of(cursor)
        canon = cursor.canonical
        if canon is not None and canon != cursor:
            anns |= annotations_of(canon)
        return anns

    def qname(cursor) -> str:
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (
                ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                ci.CursorKind.CLASS_TEMPLATE):
            return f"{parent.spelling}::{cursor.spelling}"
        return cursor.spelling

    file_cache: dict = {}

    def file_text(path):
        if path not in file_cache:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                file_cache[path] = mask_source(f.read())
        return file_cache[path]

    def owner_calls_in(cursor) -> list:
        calls = []

        def walk(c):
            for ch in c.get_children():
                if ch.kind == ci.CursorKind.CALL_EXPR:
                    ref = ch.referenced
                    if ref is not None and OWNER in decl_annotations(ref):
                        calls.append((ch.location.line, qname(ref)))
                walk(ch)

        walk(cursor)
        return calls

    def visit(cursor):
        for ch in cursor.get_children():
            loc_file = ch.location.file
            if loc_file is None:
                continue
            abs_path = os.path.abspath(loc_file.name)
            if abs_path not in wanted:
                # Still descend into namespaces of the main file's headers.
                if ch.kind in (ci.CursorKind.NAMESPACE,
                               ci.CursorKind.TRANSLATION_UNIT):
                    visit(ch)
                continue
            if ch.kind in fn_kinds and ch.is_definition():
                ext = ch.extent
                key = (abs_path, ext.start.line, qname(ch))
                if key in models:
                    continue
                masked = file_text(abs_path)
                lines = masked.split("\n")
                text = "\n".join(lines[ext.start.line - 1:ext.end.line])
                brace = text.find("{")
                if brace < 0:
                    continue
                header = text[:brace]
                body = text[brace + 1:text.rfind("}")]
                models[key] = FunctionModel(
                    path=os.path.relpath(abs_path),
                    name=qname(ch),
                    start_line=ext.start.line,
                    header=header,
                    body=body,
                    body_offset_line=(ext.start.line
                                      + text.count("\n", 0, brace + 1)),
                    annotations=decl_annotations(ch),
                    owner_calls=owner_calls_in(ch),
                )
            visit(ch)

    parse_failures = []
    for path in sorted(wanted):
        if not path.endswith((".cpp", ".cc")):
            continue
        try:
            tu = index.parse(path, args=compile_args(path))
        except ci.TranslationUnitLoadError as e:
            parse_failures.append(f"{path}: {e}")
            continue
        visit(tu.cursor)
    return list(models.values()), parse_failures


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_lint(paths: list, engine: str, compdb: str | None,
             extra_args: list) -> tuple:
    masked_files, scans = textual_models(paths)
    table = build_annotation_table(scans)
    atomic_names = collect_atomic_names(masked_files)
    unordered_per_file, unordered_members = \
        collect_unordered_names(masked_files)
    prealloc_names = collect_prealloc_names(masked_files)
    throwing_names = collect_throwing_names(scans)

    models = []
    notes = []
    use_libclang = False
    if engine in ("auto", "libclang"):
        try:
            import clang.cindex  # noqa: F401
            use_libclang = True
        except ImportError:
            if engine == "libclang":
                raise SystemExit(
                    "emon_lint: --engine libclang requested but clang.cindex "
                    "is not importable (install python3-clang + libclang, or "
                    "set EMON_LIBCLANG)")
            notes.append("libclang unavailable; using the textual engine")
    if use_libclang:
        models, failures = libclang_models(paths, compdb, extra_args)
        notes.extend(f"parse failure (textual fallback): {f}"
                     for f in failures)
        covered = {m.path for m in models}
        for scan in scans:
            for fn in scan.functions:
                if os.path.relpath(fn.path) not in covered:
                    models.append(fn)
    else:
        for scan in scans:
            models.extend(scan.functions)

    findings = []
    for fn in models:
        unordered_names = (
            unordered_per_file.get(os.path.relpath(fn.path), set())
            | unordered_members)
        findings.extend(check_guard_escape(fn))
        findings.extend(check_owner_thread(fn, table))
        findings.extend(check_bare_atomic(fn, atomic_names))
        findings.extend(check_retire_order(fn))
        findings.extend(check_wall_clock(fn, table))
        findings.extend(check_unordered_iter(fn, table, unordered_names))
        findings.extend(check_unseeded_rng(fn))
        findings.extend(check_ptr_order(fn))
        findings.extend(check_hot_path(fn, table, prealloc_names,
                                       throwing_names))
    # File-level scans run over the masked text directly (shared by both
    # engines, so fixture verdicts stay identical): pointer-keyed ordered
    # containers can be declared as class members, outside any function.
    for path, masked in masked_files.items():
        findings.extend(check_ptr_order_file(path, masked))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, notes


def load_baseline(path: str) -> set:
    keys = set()
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.add(line)
    return keys


def self_test(fixture_dir: str, engine: str, extra_args: list) -> int:
    headers = [p for p in iter_source_files(fixture_dir)
               if p.endswith((".hpp", ".h"))]
    fixtures = [p for p in iter_source_files(fixture_dir)
                if os.path.basename(p).startswith(("flag_", "pass_"))]
    if not fixtures:
        print(f"emon_lint --self-test: no fixtures under {fixture_dir}",
              file=sys.stderr)
        return 1
    failures = 0
    for fixture in fixtures:
        base = os.path.basename(fixture)
        with open(fixture, "r", encoding="utf-8") as f:
            src = f.read()
        m = re.search(r"emon-lint-expect:\s*([\w-]+)", src)
        expect = m.group(1) if m else None
        findings, _notes = run_lint([fixture] + headers, engine, None,
                                    extra_args + ["-I", fixture_dir])
        findings = [f for f in findings if f.path.endswith(base)]
        if base.startswith("flag_"):
            if expect is None:
                print(f"FAIL {base}: missing '// emon-lint-expect: <rule>'")
                failures += 1
            elif not any(f.rule == expect for f in findings):
                got = ", ".join(sorted({f.rule for f in findings})) or "none"
                print(f"FAIL {base}: expected a {expect} finding, got: {got}")
                failures += 1
            else:
                print(f"ok   {base} ({expect})")
        else:
            if findings:
                print(f"FAIL {base}: expected clean, got:")
                for f in findings:
                    print(f"     {f.render()}")
                failures += 1
            else:
                print(f"ok   {base} (clean)")
    total = len(fixtures)
    print(f"emon_lint self-test: {total - failures}/{total} fixtures passed")
    return 1 if failures else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="explicit files to lint")
    ap.add_argument("--root", default=None,
                    help="lint every C++ source under this directory")
    ap.add_argument("--compdb", default=None,
                    help="directory holding compile_commands.json")
    ap.add_argument("--engine", choices=("auto", "libclang", "textual"),
                    default="auto")
    ap.add_argument("--baseline", default=None,
                    help="file of accepted finding keys (path:rule:function)")
    ap.add_argument("--report", default=None,
                    help="write findings as JSON to this path")
    ap.add_argument("--self-test", default=None, metavar="DIR",
                    help="run the fixture corpus under DIR and exit")
    ap.add_argument("--extra-arg", action="append", default=[],
                    help="extra compiler arg for the libclang engine")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test(args.self_test, args.engine, args.extra_arg)

    paths = list(args.files)
    if args.root:
        paths.extend(iter_source_files(args.root))
    if not paths:
        ap.error("nothing to lint: pass files or --root")

    findings, notes = run_lint(paths, args.engine, args.compdb,
                               args.extra_arg)
    for note in notes:
        print(f"emon_lint: note: {note}", file=sys.stderr)

    baseline = load_baseline(args.baseline) if args.baseline else set()
    new = [f for f in findings if f.key() not in baseline]
    stale = baseline - {f.key() for f in findings}

    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump([f_.__dict__ for f_ in findings], f, indent=2)
            f.write("\n")

    for f_ in new:
        print(f_.render())
    if stale:
        print(f"emon_lint: note: {len(stale)} baseline entr"
              f"{'y is' if len(stale) == 1 else 'ies are'} no longer "
              f"triggered — prune the baseline", file=sys.stderr)
    summary = (f"emon_lint: {len(findings)} finding(s), "
               f"{len(new)} not in baseline")
    print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
