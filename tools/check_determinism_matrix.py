#!/usr/bin/env python3
"""Diff the determinism-matrix artifact against the checked-in digest table.

bench/determinism_matrix.cpp runs every canned scenario x seed x shard
count and writes BENCH_determinism.json with one Trace::digest() per cell.
This script enforces two layers:

  1. The artifact's own gates (shard parity, seed sensitivity) must have
     passed — always hard; there is no way to baseline a parity break.
  2. Every digest must match tools/determinism_matrix.json, the table
     pinned in the repo.  A mismatch means the revision changed simulated
     behaviour; if that is intentional, re-pin with --update and let the
     diff show up in review.  Cells missing from the table (a new
     scenario) are reported the same way.

Stdlib only.  Exits 0 when everything matches, 1 otherwise.

Usage:
    python3 tools/check_determinism_matrix.py [--artifact FILE]
        [--table FILE] [--update]
"""

import argparse
import json
import sys


def cell_key(entry):
    return "%s/seed=%d/shards=%d" % (
        entry["scenario"], entry["seed"], entry["shards"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", default="build/BENCH_determinism.json",
                        help="matrix artifact written by determinism_matrix")
    parser.add_argument("--table", default="tools/determinism_matrix.json",
                        help="checked-in digest table")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the table from the artifact "
                             "(parity gates still enforced)")
    args = parser.parse_args()

    try:
        with open(args.artifact, encoding="utf-8") as f:
            artifact = json.load(f)
    except (OSError, ValueError) as exc:
        print("cannot read artifact %s: %s" % (args.artifact, exc),
              file=sys.stderr)
        return 1

    failures = 0
    # Layer 1: the binary's own gates, never baselinable.
    for gate in ("shard_parity", "seed_sensitivity"):
        if not artifact.get(gate, False):
            print("FAIL %s: artifact reports the gate as failed" % gate)
            failures += 1

    digests = {cell_key(e): e["digest"] for e in artifact.get("entries", [])}
    if not digests:
        print("FAIL: artifact holds no matrix entries")
        failures += 1

    if args.update:
        if failures:
            print("refusing --update: parity gates failed", file=sys.stderr)
            return 1
        table = {
            "duration_s": artifact.get("duration_s"),
            "digests": dict(sorted(digests.items())),
        }
        with open(args.table, "w", encoding="utf-8") as f:
            json.dump(table, f, indent=2)
            f.write("\n")
        print("pinned %d digests into %s" % (len(digests), args.table))
        return 0

    # Layer 2: the checked-in table.
    try:
        with open(args.table, encoding="utf-8") as f:
            table = json.load(f)
    except (OSError, ValueError) as exc:
        print("cannot read table %s: %s (generate with --update)"
              % (args.table, exc), file=sys.stderr)
        return 1

    pinned = table.get("digests", {})
    if artifact.get("duration_s") != table.get("duration_s"):
        print("FAIL: artifact duration_s=%s but table pinned %s — digests "
              "are only comparable at the same horizon"
              % (artifact.get("duration_s"), table.get("duration_s")))
        failures += 1
    for key in sorted(set(pinned) | set(digests)):
        got = digests.get(key)
        want = pinned.get(key)
        if got is None:
            print("FAIL %s: pinned in the table but absent from the "
                  "artifact" % key)
            failures += 1
        elif want is None:
            print("FAIL %s: new matrix cell %s not in the table — pin it "
                  "with --update" % (key, got))
            failures += 1
        elif got != want:
            print("FAIL %s: digest drifted %s -> %s — if the behaviour "
                  "change is intentional, re-pin with --update"
                  % (key, want, got))
            failures += 1
        else:
            print("ok   %s %s" % (key, got))

    if failures:
        print("determinism matrix: %d failure(s)" % failures)
        return 1
    print("determinism matrix: all %d cells match" % len(digests))
    return 0


if __name__ == "__main__":
    sys.exit(main())
