// Aggregator-less operation — the paper's future-work sketch (§II-A, §IV):
// "In a truly decentralized network, the aggregators' role could be
// performed by the devices themselves having a consensus among themselves."
//
// Five devices broadcast their consumption records and commit them into a
// common chain via rotating-leader quorum voting; we crash a member mid-run
// and watch the group keep committing, then verify replica consistency.

#include <iostream>

#include "core/consensus.hpp"
#include "core/records.hpp"
#include "util/table.hpp"

int main() {
  using namespace emon;

  sim::Kernel kernel;
  core::ConsensusGroup group{kernel, 5, core::ConsensusParams{},
                             util::Rng{123}};

  // Devices submit a consumption record every 100 ms (T_measure).
  std::uint64_t seq = 0;
  sim::PeriodicTimer feeder{kernel, sim::milliseconds(100), [&] {
    for (int device = 0; device < 5; ++device) {
      core::ConsumptionRecord record;
      record.device_id = "dev-" + std::to_string(device + 1);
      record.sequence = ++seq;
      record.timestamp_ns = kernel.now().ns();
      record.interval_ns = sim::milliseconds(100).ns();
      record.current_ma = 40.0 + 10.0 * device;
      record.network = "wan-mesh";
      group.submit(core::serialize_record(record));
    }
  }};

  group.start();
  feeder.start();

  // Crash member 2 at t=10 s; restore it at t=20 s.
  kernel.schedule_at(sim::SimTime{sim::seconds(10).ns()},
                     [&group] { group.set_faulty(2, true); });
  kernel.schedule_at(sim::SimTime{sim::seconds(20).ns()},
                     [&group] { group.set_faulty(2, false); });

  kernel.run_until(sim::SimTime{sim::seconds(30).ns()});
  feeder.stop();
  group.stop();

  const auto& metrics = group.metrics();
  std::cout << "=== Device-level consensus (5 members, 1 crash) ===\n\n";
  util::Table table({"metric", "value"});
  table.row("rounds started", metrics.rounds_started);
  table.row("rounds committed", metrics.rounds_committed);
  table.row("rounds failed (crashed leader)", metrics.rounds_failed);
  table.row("messages sent", metrics.messages_sent);
  table.row("commit latency mean [ms]",
            util::Table::num(metrics.commit_latency_s.mean() * 1e3, 2));
  table.row("commit latency p99 [ms]",
            util::Table::num(metrics.commit_latency_s.quantile(0.99) * 1e3, 2));
  std::cout << table.render() << '\n';

  util::Table replicas({"member", "blocks", "records", "chain valid"});
  for (std::size_t m = 0; m < group.member_count(); ++m) {
    replicas.row(m, group.replica(m).size(), group.replica(m).record_count(),
                 group.replica(m).validate().ok ? "yes" : "NO");
  }
  std::cout << replicas.render() << '\n';
  std::cout << "honest replicas prefix-consistent: "
            << (group.replicas_consistent() ? "yes" : "NO") << '\n';
  std::cout << "\nnote: member 2 misses the blocks committed while it was\n"
               "down (crash-stop model); a production system would add a\n"
               "catch-up sync, which the paper leaves to future work.\n";
  return group.replicas_consistent() ? 0 : 1;
}
