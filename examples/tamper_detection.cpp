// Tamper detection walk-through.
//
// Two attacks against the metering architecture, and how each is caught:
//  1. A device under-reports its live consumption — caught by the
//     aggregator's ground-truth verification (system-level measurement vs
//     sum of reports, §I) and attributed via consumption profiles.
//  2. An insider rewrites consumption history at rest — caught by the
//     hash-chain validation of the permissioned blockchain (§II-A).

#include <iostream>

#include "core/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace emon;

  core::Testbed bed{core::FleetBuilder{}
                        .name("tamper_walkthrough")
                        .networks(1, 3)
                        .seed(13)
                        .spec()};
  bed.start();
  bed.run_for(sim::seconds(40));

  std::cout << "=== Attack 1: live under-reporting ===\n";
  std::cout << "dev-2 starts reporting 40 % of its real consumption at t=40 s\n\n";
  bed.device(1).set_tamper_factor(0.4);
  bed.run_for(sim::seconds(15));

  const auto& history = bed.aggregator(0).verification_history();
  util::Table windows({"window end [s]", "feeder [mA]", "expected [mA]",
                       "residual [mA]", "verdict", "suspect"});
  for (std::size_t i = history.size() - 10; i < history.size(); ++i) {
    const auto& v = history[i];
    windows.row(util::Table::num(v.window_end.to_seconds(), 0),
                util::Table::num(v.feeder_ma, 1),
                util::Table::num(v.expected_feeder_ma, 1),
                util::Table::num(v.residual_ma, 1),
                v.anomalous ? "ANOMALY" : "ok",
                v.suspect.empty() ? "-" : v.suspect);
  }
  std::cout << windows.render() << '\n';

  std::cout << "=== Attack 2: rewriting stored history ===\n\n";
  auto validation = bed.chain().validate();
  std::cout << "chain before tampering: " << bed.chain().ledger().size()
            << " blocks, " << (validation.ok ? "valid" : "INVALID") << '\n';

  // The insider halves a stored consumption value inside block 2 and even
  // fixes up that record's serialization — but cannot fix the Merkle root
  // without breaking the hash chain.
  auto& blocks = bed.chain().ledger().mutable_blocks_for_tampering();
  auto victim = core::deserialize_record(blocks[2].records[0]);
  std::cout << "rewriting " << victim.device_id << " seq " << victim.sequence
            << ": " << util::Table::num(victim.energy_mwh, 4) << " mWh -> "
            << util::Table::num(victim.energy_mwh * 0.5, 4) << " mWh\n";
  victim.energy_mwh *= 0.5;
  blocks[2].records[0] = core::serialize_record(victim);

  validation = bed.chain().validate();
  std::cout << "chain after tampering : "
            << (validation.ok
                    ? "valid (BAD — attack went unnoticed!)"
                    : "INVALID at block " + std::to_string(validation.bad_index)
                          + " (" + validation.reason + ")")
            << '\n';

  // Every aggregator's replica still holds the honest history.
  const auto replica_validation = bed.aggregator(0).replica().validate();
  std::cout << "aggregator replica    : "
            << (replica_validation.ok ? "valid (honest copy retained)"
                                      : "INVALID")
            << '\n';
  return validation.ok ? 1 : 0;
}
