// E-scooter roaming — the paper's §I motivating scenario.
//
// An e-scooter charges at home (WAN 1), rides to a host network (WAN 2),
// charges there under a *temporary membership*, and is billed entirely by
// its home aggregator.  The charge current follows a CC-CV profile.  This
// is Figure 6 as a narrative: watch the idle gap, the handshake, the
// buffered-data flush, and the consolidated bill.

#include <iostream>

#include "core/mobility.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace emon;

  // dev-1 is the e-scooter: CC-CV charging at ~1.2 A, tapering after 40 s.
  const auto scooter_load = [](const core::DeviceId& id, std::size_t index,
                               const util::SeedSequence& seeds) {
    if (id == "dev-1") {
      return hw::LoadProfilePtr(std::make_shared<hw::CcCvChargeLoad>(
          util::milliamps(1200), sim::SimTime{sim::seconds(40).ns()},
          sim::seconds(30), util::milliamps(60)));
    }
    return core::default_device_load(id, index, seeds);
  };

  core::Testbed bed{core::FleetBuilder{}
                        .name("escooter_roaming")
                        .networks(2, 2)
                        .seed(2020)
                        .load_factory(scooter_load)
                        .spec()};
  auto& scooter = bed.device(0);

  // Ride to WAN 2 at t=60 s; 20 s in transit (no grid connection).
  core::MobilityPlan plan{
      {sim::SimTime{sim::seconds(60).ns()}, bed.network_name(1),
       net::Position{bed.network_position(1).x + 2.0, 0.0},
       sim::seconds(20)},
  };
  core::schedule_plan(bed.kernel(), scooter, plan);

  bed.start();
  bed.run_for(sim::seconds(150));

  std::cout << "=== e-scooter roaming: home -> host network ===\n\n";
  std::cout << "final state        : " << core::to_string(scooter.state())
            << " at " << scooter.plugged_network() << '\n';
  std::cout << "membership         : " << core::to_string(scooter.membership())
            << " (master " << scooter.master_addr() << ")\n";
  std::cout << "records buffered   : " << scooter.stats().records_buffered
            << " (flushed " << scooter.stats().records_flushed << ")\n";
  std::cout << "Nacks received     : " << scooter.stats().nacks_received
            << "\n\n";

  util::Table hs({"#", "network", "membership", "T_handshake [s]"});
  std::size_t n = 0;
  for (const auto& h : scooter.handshakes()) {
    hs.row(++n, h.network, core::to_string(h.membership),
           util::Table::num(h.duration().to_seconds(), 2));
  }
  std::cout << hs.render() << '\n';

  // Consolidated billing at the home aggregator (agg-1).
  const auto invoice = bed.aggregator(0).billing().invoice_for("dev-1");
  util::Table bill({"network", "energy [mWh]", "records", "roamed", "cost"});
  for (const auto& line : invoice.lines) {
    bill.row(line.network, util::Table::num(line.energy_mwh, 2), line.records,
             line.roamed ? "yes" : "no", util::Table::num(line.cost, 6));
  }
  std::cout << bill.render() << '\n';
  std::cout << "total billed energy: "
            << util::Table::num(invoice.total_energy_mwh, 2) << " mWh vs "
            << "meter total "
            << util::Table::num(
                   util::as_milliwatt_hours(scooter.meter().total_energy()), 2)
            << " mWh\n";
  std::cout << "roam batches forwarded by agg-2: "
            << bed.aggregator(1).stats().roam_batches_forwarded << '\n';
  const auto validation = bed.chain().validate();
  std::cout << "blockchain: " << bed.chain().ledger().size() << " blocks, "
            << (validation.ok ? "valid" : "INVALID") << '\n';
  return 0;
}
