// Smart building — a scaled deployment of the architecture.
//
// Four floors (WANs), each with its own aggregator and six devices with
// heterogeneous loads (HVAC duty cycles, chargers, IT equipment).  A
// cleaning robot roams across floors during the run.  Demonstrates:
//  * many concurrent TDMA-slotted reporters per aggregator,
//  * building-level energy accounting from the shared chain,
//  * Grafana-style CSV export of every trace series.

#include <fstream>
#include <iostream>

#include "core/mobility.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace emon;

  const auto floor_loads = [](const core::DeviceId& id, std::size_t index,
                              const util::SeedSequence& seeds) {
    switch (index % 3) {
      case 0:  // HVAC-style: slow heavy duty cycle
        return hw::LoadProfilePtr(std::make_shared<hw::NoisyLoad>(
            std::make_shared<hw::DutyCycleLoad>(
                util::milliamps(15), util::milliamps(350),
                sim::seconds(20), 0.4,
                sim::seconds(static_cast<std::int64_t>(index))),
            0.04, sim::milliseconds(100), seeds.derive("load." + id)));
      case 1:  // charger: CC-CV
        return hw::LoadProfilePtr(std::make_shared<hw::CcCvChargeLoad>(
            util::milliamps(800), sim::SimTime{sim::seconds(45).ns()},
            sim::seconds(25), util::milliamps(40)));
      default:  // IT equipment: noisy constant
        return hw::LoadProfilePtr(std::make_shared<hw::NoisyLoad>(
            std::make_shared<hw::ConstantLoad>(util::milliamps(120)),
            0.08, sim::milliseconds(50), seeds.derive("load." + id)));
    }
  };

  core::Testbed bed{core::FleetBuilder{}
                        .name("smart_building")
                        .networks(4, 6)
                        .spacing_m(200.0)
                        .seed(88)
                        .load_factory(floor_loads)
                        .spec()};

  // The cleaning robot (dev-1, home floor 1) visits floors 2 and 3.
  core::MobilityPlan plan{
      {sim::SimTime{sim::seconds(50).ns()}, bed.network_name(1),
       net::Position{bed.network_position(1).x + 3.0, 0.0}, sim::seconds(8)},
      {sim::SimTime{sim::seconds(90).ns()}, bed.network_name(2),
       net::Position{bed.network_position(2).x + 3.0, 0.0}, sim::seconds(8)},
  };
  core::schedule_plan(bed.kernel(), bed.device(0), plan);

  bed.start();
  bed.run_for(sim::seconds(130));

  std::cout << "=== Smart building: 4 floors x 6 devices, roaming robot ===\n\n";

  util::Table floors({"floor", "aggregator", "members", "records", "blocks",
                      "feeder energy [mWh]", "anomalous windows"});
  for (std::size_t n = 0; n < bed.network_count(); ++n) {
    auto& agg = bed.aggregator(n);
    std::size_t anomalies = 0;
    for (const auto& v : agg.verification_history()) {
      anomalies += v.anomalous ? 1 : 0;
    }
    floors.row(n + 1, agg.id(), agg.members().size(),
               agg.stats().records_accepted, agg.stats().blocks_written,
               util::Table::num(
                   util::as_milliwatt_hours(agg.feeder_meter().total_energy()),
                   1),
               anomalies);
  }
  std::cout << floors.render() << '\n';

  // Building-level accounting straight from the shared chain.
  core::BillingService building{"building", core::Tariff{}};
  building.ingest_ledger(bed.chain().ledger());
  double total_device_mwh = 0.0;
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    total_device_mwh +=
        util::as_milliwatt_hours(bed.device(i).meter().total_energy());
  }
  std::cout << "chain-accounted energy : "
            << util::Table::num(building.total_energy_mwh(), 1) << " mWh ("
            << building.records_ingested() << " records, "
            << building.duplicates_skipped() << " duplicates skipped)\n";
  std::cout << "device-metered energy  : "
            << util::Table::num(total_device_mwh, 1) << " mWh\n";

  // The robot's consolidated bill at its home floor.
  const auto invoice = bed.aggregator(0).billing().invoice_for("dev-1");
  util::Table robot({"floor network", "energy [mWh]", "roamed"});
  for (const auto& line : invoice.lines) {
    robot.row(line.network, util::Table::num(line.energy_mwh, 2),
              line.roamed ? "yes" : "no");
  }
  std::cout << "\nrobot (dev-1) bill at home floor:\n" << robot.render();

  // Grafana-replacement export.
  std::ofstream csv("smart_building_traces.csv");
  bed.trace().write_csv(csv);
  std::cout << "\ntraces exported        : smart_building_traces.csv ("
            << bed.trace().total_points() << " points, "
            << bed.trace().series_names().size() << " series)\n";
  const auto validation = bed.chain().validate();
  std::cout << "blockchain             : " << bed.chain().ledger().size()
            << " blocks, " << (validation.ok ? "valid" : "INVALID") << '\n';
  return validation.ok ? 0 : 1;
}
