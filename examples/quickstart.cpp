// Quickstart: the paper's testbed (Figure 4) in ~60 lines.
//
// Two WANs x two devices + one aggregator each.  Devices register, report
// every 100 ms over MQTT, the aggregators verify reports against their
// feeder meters and write validated records into the shared permissioned
// blockchain.  We run 30 simulated seconds and print what happened.

#include <iostream>

#include "core/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace emon;

  // The paper's testbed shape, as a canned scenario spec.
  core::Testbed bed{core::paper_figure4(/*seed=*/7)};
  bed.start();
  bed.run_for(sim::seconds(30));

  std::cout << "=== emon quickstart: 30 simulated seconds ===\n\n";

  util::Table devices({"device", "state", "network", "samples", "reports",
                       "acked", "buffered", "energy [mWh]"});
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    auto& dev = bed.device(i);
    devices.row(dev.id(), core::to_string(dev.state()), dev.plugged_network(),
                dev.stats().samples, dev.stats().reports_sent,
                dev.stats().reports_acked, dev.stats().records_buffered,
                util::as_milliwatt_hours(dev.meter().total_energy()));
  }
  std::cout << devices.render() << '\n';

  util::Table aggs({"aggregator", "members", "records", "blocks", "anomalies",
                    "feeder energy [mWh]"});
  for (std::size_t i = 0; i < bed.network_count(); ++i) {
    auto& agg = bed.aggregator(i);
    std::size_t anomalies = 0;
    for (const auto& v : agg.verification_history()) {
      anomalies += v.anomalous ? 1 : 0;
    }
    aggs.row(agg.id(), agg.members().size(), agg.stats().records_accepted,
             agg.stats().blocks_written, anomalies,
             util::as_milliwatt_hours(agg.feeder_meter().total_energy()));
  }
  std::cout << aggs.render() << '\n';

  const auto validation = bed.chain().validate();
  std::cout << "blockchain: " << bed.chain().ledger().size() << " blocks, "
            << bed.chain().ledger().record_count() << " records, "
            << (validation.ok ? "valid" : "INVALID: " + validation.reason)
            << "\n\n";

  // Per-device billing at each home aggregator.
  util::Table bills({"device", "billed by", "energy [mWh]", "cost"});
  for (std::size_t i = 0; i < bed.network_count(); ++i) {
    auto& agg = bed.aggregator(i);
    for (const auto& id : agg.billing().billed_devices()) {
      const auto invoice = agg.billing().invoice_for(id);
      bills.row(id, agg.id(), invoice.total_energy_mwh,
                util::Table::num(invoice.total_cost, 6));
    }
  }
  std::cout << bills.render() << '\n';

  // Historical queries against the aggregator's embedded time-series store:
  // "energy for dev-1 over [10 s, 20 s)", downsampled into 2 s windows.
  const auto& tsdb = bed.aggregator(0).tsdb();
  const std::int64_t t0 = sim::seconds(10).ns();
  const std::int64_t t1 = sim::seconds(20).ns();
  util::Table windows({"window start [s]", "records", "avg current [mA]",
                       "energy [mWh]"});
  for (const auto& w :
       tsdb.downsample("dev-1", t0, t1, sim::seconds(2).ns())) {
    windows.row(util::Table::num(static_cast<double>(w.start_ns) / 1e9, 0),
                w.count, util::Table::num(w.avg_current_ma, 1),
                util::Table::num(w.sum_energy_mwh, 3));
  }
  std::cout << "store query: dev-1 over [10 s, 20 s), 2 s windows\n"
            << windows.render();
  if (const auto agg10 = tsdb.aggregate("dev-1", t0, t1)) {
    std::cout << "range total: " << util::Table::num(agg10->sum_energy_mwh, 3)
              << " mWh across " << agg10->count << " records\n";
  }
  return 0;
}
