// Query-engine scaling benchmark — fleet-wide Tsdb reads vs worker count
// under a 10,000-device / 32-network metro_fleet-shaped ingest.
//
// The store is populated directly with the metro_fleet record shape
// (per-device jittered 10 Hz streams across 32 WANs, a roaming slice per
// 8th device arriving out of order, 1-in-5 offline-buffered records) so the
// bench isolates the query path: the same four dashboard/billing/
// verification-style fleet queries run at every requested worker count and
// are compared bit-for-bit against the workers=1 sequential reference —
// parity is the hard gate, the latency table is the measurement.
//
//   Q1 aggregate        whole-history roll-up (summary fast path heavy)
//   Q2 current_stats    live-only filter over the mid 60% window (decode)
//   Q3 downsample       1 s fleet windows over the full span (merge heavy)
//   Q4 breakdown        per-network billing read via BillingService
//
// Flags: --devices N     (default 10000)
//        --networks N    (default 32)
//        --records N     per device (default 120)
//        --shards N      Tsdb shards (default 64)
//        --max-workers N (default 8; measured at 1,2,4,...,max)
//        --repeat N      timed repetitions per point, best kept (default 3)
//        --seed N        (default 1)
//        --out FILE      (default BENCH_query.json)
//        --min-speedup X best-worker-count floor, enforced only when the
//                        machine has >= that many hardware threads
//                        (default 0 = record only)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/billing.hpp"
#include "core/records.hpp"
#include "store/query_engine.hpp"
#include "store/tsdb.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using emon::core::ConsumptionRecord;
using emon::core::DeviceId;
using emon::core::NetworkId;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Workload {
  std::vector<ConsumptionRecord> arrival_order;
  std::vector<DeviceId> devices;
  std::int64_t t_min_ns = 0;
  std::int64_t t_max_ns = 0;
};

/// metro_fleet-shaped ingest: round-robin interleaved device streams, every
/// 8th device roams to the neighbouring WAN for the middle sixth of its
/// stream and that slice arrives last (roam-forwarded batch).
Workload make_workload(std::size_t devices, std::size_t networks,
                       std::size_t per_device, std::uint64_t seed) {
  Workload w;
  std::vector<std::vector<ConsumptionRecord>> streams(devices);
  emon::util::Rng rng{seed};
  for (std::size_t d = 0; d < devices; ++d) {
    const DeviceId id = "dev-" + std::to_string(d + 1);
    const NetworkId home = "wan-" + std::to_string(d % networks);
    const NetworkId visited = "wan-" + std::to_string((d + 1) % networks);
    const bool roams = d % 8 == 0;
    w.devices.push_back(id);
    std::vector<ConsumptionRecord> live;
    std::vector<ConsumptionRecord> roamed;
    std::int64_t t = static_cast<std::int64_t>(d) * 9'000'000;
    for (std::size_t i = 0; i < per_device; ++i) {
      t += 100'000'000 + static_cast<std::int64_t>(rng.uniform(-50e3, 50e3));
      ConsumptionRecord r;
      r.device_id = id;
      r.sequence = i + 1;
      r.timestamp_ns = t;
      r.interval_ns = 100'000'000;
      r.current_ma = 150.0 + 40.0 * static_cast<double>(d % 7) +
                     rng.uniform(-5.0, 5.0);
      r.bus_voltage_mv = 5000.0 + rng.uniform(-10.0, 10.0);
      r.energy_mwh = r.current_ma * 5.0 * (0.1 / 3600.0);
      const bool away = roams && i >= per_device / 3 && i < per_device / 2;
      r.network = away ? visited : home;
      r.stored_offline = i % 5 == 0;
      (away ? roamed : live).push_back(std::move(r));
    }
    live.insert(live.end(), std::make_move_iterator(roamed.begin()),
                std::make_move_iterator(roamed.end()));
    streams[d] = std::move(live);
  }
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (auto& stream : streams) {
      if (i < stream.size()) {
        w.arrival_order.push_back(std::move(stream[i]));
        any = true;
      }
    }
    if (!any) {
      break;
    }
  }
  w.t_min_ns = INT64_MAX;
  w.t_max_ns = INT64_MIN;
  for (const auto& r : w.arrival_order) {
    w.t_min_ns = std::min(w.t_min_ns, r.timestamp_ns);
    w.t_max_ns = std::max(w.t_max_ns, r.timestamp_ns);
  }
  return w;
}

/// One worker count's answers, kept whole for the parity comparison.
struct QueryAnswers {
  emon::store::FleetAggregate agg;
  emon::store::FleetStats stats;
  emon::store::FleetWindows windows;
  std::vector<emon::core::Invoice> invoices;
};

bool aggregates_equal(const emon::store::DeviceAggregate& a,
                      const emon::store::DeviceAggregate& b) {
  return a.count == b.count && a.t_min_ns == b.t_min_ns &&
         a.t_max_ns == b.t_max_ns && a.min_current_ma == b.min_current_ma &&
         a.max_current_ma == b.max_current_ma &&
         a.avg_current_ma == b.avg_current_ma &&
         a.sum_energy_mwh == b.sum_energy_mwh;
}

bool answers_equal(const QueryAnswers& a, const QueryAnswers& b) {
  if (a.agg.per_device.size() != b.agg.per_device.size() ||
      !aggregates_equal(a.agg.merged, b.agg.merged)) {
    return false;
  }
  for (std::size_t i = 0; i < a.agg.per_device.size(); ++i) {
    if (a.agg.per_device[i].first != b.agg.per_device[i].first ||
        !aggregates_equal(a.agg.per_device[i].second,
                          b.agg.per_device[i].second)) {
      return false;
    }
  }
  const auto running_stats_equal = [](const emon::util::RunningStats& x,
                                      const emon::util::RunningStats& y) {
    if (x.count() != y.count()) {
      return false;
    }
    return x.empty() || (x.mean() == y.mean() && x.min() == y.min() &&
                         x.max() == y.max() && x.variance() == y.variance());
  };
  if (a.stats.per_device.size() != b.stats.per_device.size() ||
      !running_stats_equal(a.stats.merged, b.stats.merged)) {
    return false;
  }
  for (std::size_t i = 0; i < a.stats.per_device.size(); ++i) {
    if (a.stats.per_device[i].first != b.stats.per_device[i].first ||
        !running_stats_equal(a.stats.per_device[i].second,
                             b.stats.per_device[i].second)) {
      return false;
    }
  }
  const auto windows_equal = [](const emon::store::WindowAggregate& x,
                                const emon::store::WindowAggregate& y) {
    return x.start_ns == y.start_ns && x.count == y.count &&
           x.avg_current_ma == y.avg_current_ma &&
           x.max_current_ma == y.max_current_ma &&
           x.sum_energy_mwh == y.sum_energy_mwh;
  };
  if (a.windows.merged.size() != b.windows.merged.size() ||
      a.windows.per_device.size() != b.windows.per_device.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.windows.merged.size(); ++i) {
    if (!windows_equal(a.windows.merged[i], b.windows.merged[i])) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.windows.per_device.size(); ++i) {
    const auto& da = a.windows.per_device[i];
    const auto& db_ = b.windows.per_device[i];
    if (da.first != db_.first || da.second.size() != db_.second.size()) {
      return false;
    }
    for (std::size_t w = 0; w < da.second.size(); ++w) {
      if (!windows_equal(da.second[w], db_.second[w])) {
        return false;
      }
    }
  }
  if (a.invoices.size() != b.invoices.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.invoices.size(); ++i) {
    if (a.invoices[i].device_id != b.invoices[i].device_id ||
        a.invoices[i].total_energy_mwh != b.invoices[i].total_energy_mwh ||
        a.invoices[i].total_cost != b.invoices[i].total_cost) {
      return false;
    }
  }
  return true;
}

struct Timings {
  std::size_t workers = 0;
  // Best (minimum) over the --repeat runs.
  double aggregate_ms = 1e300;
  double stats_ms = 1e300;
  double downsample_ms = 1e300;
  double billing_ms = 1e300;
  [[nodiscard]] double total_ms() const {
    return aggregate_ms + stats_ms + downsample_ms + billing_ms;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace emon;
  util::LogConfig::set_level(util::LogLevel::kError);

  std::size_t devices = 10'000;
  std::size_t networks = 32;
  std::size_t per_device = 120;
  std::size_t shards = 64;
  std::size_t max_workers = 8;
  std::size_t repeat = 3;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_query.json";
  double min_speedup = 0.0;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--devices") {
      devices = std::stoul(value);
    } else if (flag == "--networks") {
      networks = std::stoul(value);
    } else if (flag == "--records") {
      per_device = std::stoul(value);
    } else if (flag == "--shards") {
      shards = std::stoul(value);
    } else if (flag == "--max-workers") {
      max_workers = std::stoul(value);
    } else if (flag == "--repeat") {
      repeat = std::stoul(value);
    } else if (flag == "--seed") {
      seed = std::stoull(value);
    } else if (flag == "--out") {
      out_path = value;
    } else if (flag == "--min-speedup") {
      min_speedup = std::stod(value);
    } else {
      std::cerr << "unknown flag " << flag << '\n';
      return 2;
    }
  }
  max_workers = std::max<std::size_t>(1, max_workers);
  repeat = std::max<std::size_t>(1, repeat);

  // -- Ingest -----------------------------------------------------------------
  const Workload workload = make_workload(devices, networks, per_device, seed);
  // Seal every 32 records so the default --records 120 produces several
  // sealed segments per device (the summary fast path must be in play).
  store::Tsdb db{store::TsdbOptions{shards, 32}};
  const auto ingest_t0 = Clock::now();
  for (const auto& r : workload.arrival_order) {
    db.ingest(r);
  }
  const double ingest_ms = ms_since(ingest_t0);
  const auto db_stats = db.stats();
  std::cout << "=== Query scaling: " << devices << " devices / " << networks
            << " networks, " << db_stats.records_ingested
            << " records ingested in " << util::Table::num(ingest_ms, 0)
            << " ms (" << db_stats.segments_sealed << " sealed segments, "
            << db.shard_count() << " shards) ===\n\n";

  // -- Query specs ------------------------------------------------------------
  const std::int64_t span = workload.t_max_ns - workload.t_min_ns;
  store::QuerySpec whole;  // Q1: whole-history fleet roll-up
  store::QuerySpec live_mid;  // Q2: live-only, mid 60% (verification read)
  live_mid.t0_ns = workload.t_min_ns + span / 5;
  live_mid.t1_ns = workload.t_max_ns - span / 5;
  live_mid.filter.stored_offline = false;
  store::QuerySpec windows = whole;  // Q3: 1 s fleet windows
  windows.window_ns = 1'000'000'000;

  const auto run_queries = [&](const store::QueryEngine& engine,
                               const core::BillingService& billing,
                               Timings& timings) {
    QueryAnswers answers;
    auto t0 = Clock::now();
    answers.agg = engine.aggregate(whole);
    timings.aggregate_ms = std::min(timings.aggregate_ms, ms_since(t0));
    t0 = Clock::now();
    answers.stats = engine.current_stats(live_mid);
    timings.stats_ms = std::min(timings.stats_ms, ms_since(t0));
    t0 = Clock::now();
    answers.windows = engine.downsample(windows);
    timings.downsample_ms = std::min(timings.downsample_ms, ms_since(t0));
    t0 = Clock::now();
    answers.invoices = billing.invoice_all();
    timings.billing_ms = std::min(timings.billing_ms, ms_since(t0));
    return answers;
  };

  // -- Measure per worker count -----------------------------------------------
  std::vector<std::size_t> worker_counts;
  for (std::size_t w = 1; w <= max_workers; w *= 2) {
    worker_counts.push_back(w);
  }
  if (worker_counts.back() != max_workers) {
    worker_counts.push_back(max_workers);
  }

  std::vector<Timings> results;
  QueryAnswers reference;
  bool parity = true;
  for (const std::size_t w : worker_counts) {
    const store::QueryEngine engine{db, store::QueryEngineOptions{w}};
    core::BillingService billing{"wan-0", core::Tariff{}};
    billing.bind_store(&db);
    billing.bind_engine(&engine);
    for (const auto& id : workload.devices) {
      billing.mark_billable(id);
    }
    Timings timings;
    timings.workers = w;
    QueryAnswers answers;
    for (std::size_t rep = 0; rep < repeat; ++rep) {
      answers = run_queries(engine, billing, timings);
    }
    if (w == 1) {
      reference = std::move(answers);
    } else if (!answers_equal(reference, answers)) {
      parity = false;
      std::cerr << "PARITY FAIL at workers=" << w << '\n';
    }
    results.push_back(timings);
  }

  const double base_total = results.front().total_ms();
  util::Table table({"workers", "aggregate [ms]", "stats [ms]",
                     "downsample [ms]", "billing [ms]", "total [ms]",
                     "speedup"});
  for (const auto& t : results) {
    table.row(t.workers, util::Table::num(t.aggregate_ms, 2),
              util::Table::num(t.stats_ms, 2),
              util::Table::num(t.downsample_ms, 2),
              util::Table::num(t.billing_ms, 2),
              util::Table::num(t.total_ms(), 2),
              util::Table::num(base_total / t.total_ms(), 2) + " x");
  }
  std::cout << table.render() << '\n';

  // Fleet shape checks: the queries actually saw the whole fleet.
  const bool coverage_ok =
      reference.agg.per_device.size() == devices &&
      reference.agg.merged.count == db_stats.records_ingested &&
      reference.invoices.size() == devices;

  double best_speedup = 1.0;
  std::size_t best_workers = 1;
  for (const auto& t : results) {
    const double s = base_total / t.total_ms();
    if (s > best_speedup) {
      best_speedup = s;
      best_workers = t.workers;
    }
  }
  const unsigned hw_threads = std::thread::hardware_concurrency();

  // -- JSON artifact ----------------------------------------------------------
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"devices\": " << devices << ", \"networks\": " << networks
       << ", \"records_per_device\": " << per_device
       << ", \"records_ingested\": " << db_stats.records_ingested
       << ", \"shards\": " << db.shard_count()
       << ", \"segments_sealed\": " << db_stats.segments_sealed
       << ", \"ingest_ms\": " << ingest_ms
       << ", \"hardware_threads\": " << hw_threads << ",\n"
       << "  \"points\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& t = results[i];
    json << "    {\"workers\": " << t.workers
         << ", \"aggregate_ms\": " << t.aggregate_ms
         << ", \"stats_ms\": " << t.stats_ms
         << ", \"downsample_ms\": " << t.downsample_ms
         << ", \"billing_ms\": " << t.billing_ms
         << ", \"total_ms\": " << t.total_ms()
         << ", \"speedup\": " << base_total / t.total_ms() << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"best_speedup\": " << best_speedup
       << ", \"best_workers\": " << best_workers
       << ", \"parity\": " << (parity ? "true" : "false")
       << ", \"coverage_ok\": " << (coverage_ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "json: " << out_path << '\n';

  // -- Shape gate -------------------------------------------------------------
  bool ok = parity && coverage_ok;
  std::cout << "shape check: parity " << (parity ? "PASS" : "FAIL")
            << "; coverage " << (coverage_ok ? "PASS" : "FAIL");
  if (min_speedup > 0.0) {
    const bool enforceable = hw_threads >= best_workers && hw_threads > 1;
    const bool speedup_ok = best_speedup >= min_speedup;
    if (enforceable && !speedup_ok) {
      ok = false;
    }
    std::cout << "; speedup >= " << min_speedup << ": "
              << (speedup_ok ? "PASS" : (enforceable ? "FAIL" : "SKIP (cores)"));
  }
  std::cout << '\n';
  return ok ? 0 : 1;
}
