// In-text result — "The time to register a temporary membership in Network
// 2, T_handshake, is found to be 6 seconds on average with a variation
// between 5.5-6.5 seconds over 15 runs."
//
// 15 seeded runs of the Figure 6 transition; per run we measure the span
// from plug-in at network 2 until the temporary-membership Accept arrives
// (Wi-Fi scan + association + settle + probe report -> Nack -> registration
// with master verification over the backhaul).

#include <iostream>

#include "core/scenario.hpp"
#include "util/stats.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  emon::util::LogConfig::set_level(emon::util::LogLevel::kError);
  using namespace emon;

  constexpr int kRuns = 15;
  util::SampleSet samples;
  util::Table table({"run", "seed", "T_handshake [s]", "scan [s]",
                     "assoc+settle+protocol [s]"});

  for (int run = 0; run < kRuns; ++run) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(run);
    core::Testbed bed{core::paper_figure4(seed)};
    bed.start();
    bed.run_for(sim::seconds(20));
    bed.device(0).move_to(bed.network_name(1),
                          net::Position{bed.network_position(1).x + 2.0, 0.0},
                          sim::seconds(10));
    bed.run_for(sim::seconds(30));

    const auto& handshakes = bed.device(0).handshakes();
    if (handshakes.size() < 2 ||
        handshakes[1].membership != core::MembershipKind::kTemporary) {
      std::cerr << "run " << run << ": roam handshake did not complete\n";
      return 1;
    }
    const double t = handshakes[1].duration().to_seconds();
    samples.add(t);
    const double scan_s =
        bed.spec().sys.wifi.scan_dwell.to_seconds() *
        bed.spec().sys.wifi.channels;
    table.row(run + 1, seed, util::Table::num(t, 2),
              util::Table::num(scan_s, 2), util::Table::num(t - scan_s, 2));
  }

  std::cout << "=== T_handshake: temporary membership registration ("
            << kRuns << " runs) ===\n\n";
  std::cout << table.render() << '\n';

  util::Table summary({"metric", "measured", "paper"});
  summary.row("mean [s]", util::Table::num(samples.mean(), 2), "6.0");
  summary.row("min [s]", util::Table::num(samples.min(), 2), "5.5");
  summary.row("max [s]", util::Table::num(samples.max(), 2), "6.5");
  summary.row("stddev [s]", util::Table::num(samples.stddev(), 2), "-");
  std::cout << summary.render() << '\n';

  const bool mean_ok = samples.mean() > 5.5 && samples.mean() < 6.5;
  const bool band_ok = samples.min() > 5.0 && samples.max() < 7.0;
  std::cout << "shape check: mean within 5.5-6.5 s: "
            << (mean_ok ? "PASS" : "FAIL")
            << "; spread comparable to paper: " << (band_ok ? "PASS" : "FAIL")
            << '\n';
  return (mean_ok && band_ok) ? 0 : 1;
}
