// Microbenchmarks for the simulation and protocol substrates: event kernel
// throughput, MQTT topic matching and dispatch, record serialization,
// envelope seal/decode throughput with per-message byte overhead, and
// whole-testbed simulation rate (simulated seconds per wall second).

#include <benchmark/benchmark.h>

#include "core/protocol.hpp"
#include "core/records.hpp"
#include "util/log.hpp"
#include "core/scenario.hpp"
#include "net/mqtt.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace emon;

// Benchmarks spin up testbeds whose runs end mid-handshake; silence the
// resulting (expected) verification warnings.
const bool g_quiet_logs = [] {
  util::LogConfig::set_level(util::LogLevel::kError);
  return true;
}();

void BM_KernelScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    for (int i = 0; i < 1000; ++i) {
      kernel.schedule_at(sim::SimTime{i}, [] {});
    }
    benchmark::DoNotOptimize(kernel.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_KernelScheduleRun);

void BM_KernelCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(kernel.schedule_at(sim::SimTime{i}, [] {}));
    }
    for (const auto id : ids) {
      kernel.cancel(id);
    }
    benchmark::DoNotOptimize(kernel.run());
  }
}
BENCHMARK(BM_KernelCancel);

void BM_TopicMatch(benchmark::State& state) {
  const std::string filter = "emon/report/+";
  const std::string topic = "emon/report/dev-42";
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::topic_matches(filter, topic));
  }
}
BENCHMARK(BM_TopicMatch);

void BM_TopicMatchDeepWildcard(benchmark::State& state) {
  const std::string filter = "a/+/c/+/e/#";
  const std::string topic = "a/b/c/d/e/f/g/h";
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::topic_matches(filter, topic));
  }
}
BENCHMARK(BM_TopicMatchDeepWildcard);

void BM_RecordSerializeRoundTrip(benchmark::State& state) {
  core::ConsumptionRecord record;
  record.device_id = "dev-1";
  record.sequence = 12345;
  record.timestamp_ns = 987654321;
  record.interval_ns = 100000000;
  record.current_ma = 123.456;
  record.bus_voltage_mv = 4998.0;
  record.energy_mwh = 0.0171;
  record.network = "wan-1";
  for (auto _ : state) {
    auto bytes = core::serialize_record(record);
    auto back = core::deserialize_record(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_RecordSerializeRoundTrip);

void BM_ReportBatchSerialize(benchmark::State& state) {
  std::vector<core::ConsumptionRecord> records(
      static_cast<std::size_t>(state.range(0)));
  std::uint64_t seq = 0;
  for (auto& r : records) {
    r.device_id = "dev-1";
    r.sequence = seq++;
    r.network = "wan-1";
  }
  for (auto _ : state) {
    auto bytes = core::serialize_records(records);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ReportBatchSerialize)->Arg(1)->Arg(64)->Arg(256);

// -- Envelope framing (core/protocol.hpp) -------------------------------------

core::ConsumptionRecord bench_record(std::uint64_t seq) {
  core::ConsumptionRecord r;
  r.device_id = "dev-1";
  r.sequence = seq;
  r.timestamp_ns = 987654321;
  r.interval_ns = 100000000;
  r.current_ma = 123.456;
  r.bus_voltage_mv = 4998.0;
  r.energy_mwh = 0.0171;
  r.network = "wan-1";
  return r;
}

core::Report bench_report(std::size_t records) {
  core::Report report;
  report.device_id = "dev-1";
  for (std::size_t i = 0; i < records; ++i) {
    report.records.push_back(bench_record(i + 1));
  }
  return report;
}

void BM_EnvelopeSealReport(benchmark::State& state) {
  const auto report = bench_report(static_cast<std::size_t>(state.range(0)));
  std::size_t frame_bytes = 0;
  std::size_t payload_bytes = 0;
  for (auto _ : state) {
    auto frame = core::protocol::seal(report);
    frame_bytes = frame.size();
    payload_bytes = frame.size() - core::protocol::kHeaderSize;
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame_bytes));
  state.counters["frame_bytes"] = static_cast<double>(frame_bytes);
  state.counters["overhead_bytes"] =
      static_cast<double>(frame_bytes - payload_bytes);
  state.counters["overhead_pct"] =
      100.0 * static_cast<double>(frame_bytes - payload_bytes) /
      static_cast<double>(frame_bytes);
}
BENCHMARK(BM_EnvelopeSealReport)->Arg(1)->Arg(64)->Arg(256);

void BM_EnvelopeDecodeReport(benchmark::State& state) {
  const auto frame = core::protocol::seal(
      bench_report(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto decoded = core::protocol::decode_any(frame);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_EnvelopeDecodeReport)->Arg(1)->Arg(64)->Arg(256);

void BM_EnvelopeRoundTripCtrl(benchmark::State& state) {
  // The smallest common frame: header overhead dominates here.
  core::CtrlMessage ctrl;
  ctrl.type = core::CtrlType::kReportAck;
  ctrl.device_id = "dev-1";
  ctrl.ack_sequence = 42;
  std::size_t frame_bytes = 0;
  for (auto _ : state) {
    auto frame = core::protocol::seal(ctrl);
    frame_bytes = frame.size();
    auto decoded = core::protocol::decode_any(frame);
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["frame_bytes"] = static_cast<double>(frame_bytes);
  state.counters["overhead_bytes"] =
      static_cast<double>(core::protocol::kHeaderSize);
}
BENCHMARK(BM_EnvelopeRoundTripCtrl);

void BM_EnvelopeRejectGarbage(benchmark::State& state) {
  // Fast-path rejection cost for a frame that fails the magic check.
  std::vector<std::uint8_t> garbage(64, 0xAB);
  for (auto _ : state) {
    auto decoded = core::protocol::decode_any(
        std::span<const std::uint8_t>(garbage.data(), garbage.size()));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_EnvelopeRejectGarbage);

void BM_TestbedSimulationRate(benchmark::State& state) {
  // Simulated seconds per wall second for the full Figure 4 testbed
  // (2 networks x 2 devices at 10 Hz reporting).
  for (auto _ : state) {
    core::Testbed bed{core::paper_figure4(/*seed=*/1)};
    bed.start();
    bed.run_for(sim::seconds(10));
    benchmark::DoNotOptimize(bed.kernel().executed());
  }
  state.counters["sim_s_per_iter"] = 10;
}
BENCHMARK(BM_TestbedSimulationRate)->Unit(benchmark::kMillisecond);

void BM_TestbedScaling(benchmark::State& state) {
  const auto networks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::Testbed bed{core::FleetBuilder{}
                          .name("scaling")
                          .networks(networks, 4)
                          .spacing_m(200.0)
                          .seed(1)
                          .spec()};
    bed.start();
    bed.run_for(sim::seconds(5));
    benchmark::DoNotOptimize(bed.kernel().executed());
  }
  state.counters["devices"] =
      static_cast<double>(networks) * 4.0;
}
BENCHMARK(BM_TestbedScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
