// Fleet-scale benchmark — the scenario engine + sim-kernel fast path under
// a 10,000-device / 32-network `metro_fleet` workload.
//
// Two measurements, both emitted to BENCH_fleet.json:
//  1. Kernel fast path: the same periodic workload driven (a) naively —
//     every tick schedules the next tick with a fresh callback — and
//     (b) via schedule_every, which stores each callback once.  Reported:
//     events/sec and callbacks_stored (allocation-pressure proxy) for both.
//  2. The full scenario: wires the fleet via ScenarioSpec/FleetBuilder and
//     runs it single-threaded to completion, reporting wall time, executed
//     events, events/sec and end-state fleet counters.
//
// A third measurement when --shards N (N > 1) is given: the same scenario
// runs again on the sharded engine (per-WAN event queues on worker
// threads, conservative lookahead over the backhaul latency) and the
// Trace::digest() of both runs is compared — bit parity is a hard shape
// check; the wall-clock speedup is recorded to BENCH_shard.json.
//
// Flags: --scenario NAME  (default metro_fleet; any canned scenario)
//        --networks N --devices N   (metro_fleet shape, default 32/10000)
//        --duration-s S  (simulated seconds, default 15)
//        --seed N        (default 1)
//        --out FILE      (default BENCH_fleet.json)
//        --shards N      (default 1 = skip the sharded comparison)
//        --shard-out FILE (default BENCH_shard.json)
//        --min-speedup X (shape-check floor, only enforced when the
//                         machine has >= N hardware threads; default 0)

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "core/scenario.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct KernelRunStats {
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t callbacks_stored = 0;
};

/// The dominant event pattern, driven the pre-fast-path way: each tick
/// re-schedules itself, handing the kernel a brand-new callback to store.
struct NaiveTick {
  emon::sim::Kernel& kernel;
  std::uint64_t& ticks;
  emon::sim::Duration period;

  void operator()() const {
    // Placeholder for real work; the cost under test is the scheduling.
    ++ticks;
    kernel.schedule_in(period, *this);  // fresh stored callback every tick
  }
};

KernelRunStats run_naive_periodic(std::size_t sources, emon::sim::Duration period,
                                  emon::sim::Duration horizon) {
  using namespace emon::sim;
  Kernel kernel;
  std::uint64_t ticks = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < sources; ++i) {
    kernel.schedule_in(period, NaiveTick{kernel, ticks, period});
  }
  kernel.run_until(SimTime::zero() + horizon);
  KernelRunStats stats;
  stats.wall_s = seconds_since(t0);
  stats.events = kernel.executed();
  stats.events_per_sec = static_cast<double>(stats.events) / stats.wall_s;
  stats.callbacks_stored = kernel.callbacks_stored();
  return stats;
}

/// The same workload on the schedule_every fast path: one stored callback
/// per source for the entire run.
KernelRunStats run_fast_periodic(std::size_t sources, emon::sim::Duration period,
                                 emon::sim::Duration horizon) {
  using namespace emon::sim;
  Kernel kernel;
  std::uint64_t ticks = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < sources; ++i) {
    kernel.schedule_every(period, [&ticks] { ++ticks; });
  }
  kernel.run_until(SimTime::zero() + horizon);
  KernelRunStats stats;
  stats.wall_s = seconds_since(t0);
  stats.events = kernel.executed();
  stats.events_per_sec = static_cast<double>(stats.events) / stats.wall_s;
  stats.callbacks_stored = kernel.callbacks_stored();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emon;
  util::LogConfig::set_level(util::LogLevel::kError);

  std::string scenario = "metro_fleet";
  std::string out_path = "BENCH_fleet.json";
  std::string shard_out_path = "BENCH_shard.json";
  std::size_t networks = 32;
  std::size_t devices = 10'000;
  std::size_t shards = 1;
  double min_speedup = 0.0;
  std::uint64_t seed = 1;
  double duration_s = 15.0;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--scenario") {
      scenario = value;
    } else if (flag == "--networks") {
      networks = std::stoul(value);
    } else if (flag == "--devices") {
      devices = std::stoul(value);
    } else if (flag == "--duration-s") {
      duration_s = std::stod(value);
    } else if (flag == "--seed") {
      seed = std::stoull(value);
    } else if (flag == "--out") {
      out_path = value;
    } else if (flag == "--shards") {
      shards = std::stoul(value);
    } else if (flag == "--shard-out") {
      shard_out_path = value;
    } else if (flag == "--min-speedup") {
      min_speedup = std::stod(value);
    } else {
      std::cerr << "unknown flag " << flag << '\n';
      return 2;
    }
  }

  // -- 1. Kernel fast path vs naive rescheduling ------------------------------
  // 2000 sources x 1 ms over 10 simulated seconds = 20M naive callback
  // allocations if done the old way.
  const std::size_t kSources = 2000;
  const auto kPeriod = sim::milliseconds(1);
  const auto kHorizon = sim::seconds(10);
  const KernelRunStats naive = run_naive_periodic(kSources, kPeriod, kHorizon);
  const KernelRunStats fast = run_fast_periodic(kSources, kPeriod, kHorizon);

  util::Table kernel_table({"driver", "events", "wall [s]", "events/sec",
                            "callbacks stored"});
  kernel_table.row("schedule_in per tick", naive.events,
                   util::Table::num(naive.wall_s, 3),
                   util::Table::num(naive.events_per_sec / 1e6, 2) + " M",
                   naive.callbacks_stored);
  kernel_table.row("schedule_every", fast.events,
                   util::Table::num(fast.wall_s, 3),
                   util::Table::num(fast.events_per_sec / 1e6, 2) + " M",
                   fast.callbacks_stored);
  std::cout << "=== Kernel periodic fast path (" << kSources << " sources x "
            << sim::to_string(kPeriod) << " over " << sim::to_string(kHorizon)
            << ") ===\n\n"
            << kernel_table.render() << '\n';

  // -- 2. The fleet scenario ---------------------------------------------------
  const auto make_spec = [&] {
    return scenario == "metro_fleet"
               ? core::metro_fleet(networks, devices, seed)
               : core::canned_scenario(scenario, seed);
  };
  core::ScenarioSpec spec = make_spec();
  const auto build_t0 = Clock::now();
  core::Testbed bed{std::move(spec)};
  const double build_wall_s = seconds_since(build_t0);

  std::cout << "=== Scenario: " << bed.spec().name << " — "
            << bed.device_count() << " devices / " << bed.network_count()
            << " networks, " << duration_s << " simulated seconds ===\n\n";

  const auto run_t0 = Clock::now();
  bed.start();
  bed.run_for(sim::seconds_f(duration_s));
  const double run_wall_s = seconds_since(run_t0);

  const std::uint64_t events = bed.executed_events();
  const double events_per_sec = static_cast<double>(events) / run_wall_s;

  std::size_t reporting = 0;
  std::uint64_t samples = 0;
  std::uint64_t reports_acked = 0;
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    const auto& dev = bed.device(i);
    reporting += dev.state() == core::DeviceState::kReporting ? 1 : 0;
    samples += dev.stats().samples;
    reports_acked += dev.stats().reports_acked;
  }
  std::uint64_t records_accepted = 0;
  std::size_t members = 0;
  for (std::size_t n = 0; n < bed.network_count(); ++n) {
    records_accepted += bed.aggregator(n).stats().records_accepted;
    members += bed.aggregator(n).members().size();
  }

  util::Table fleet({"metric", "value"});
  fleet.row("build wall [s]", util::Table::num(build_wall_s, 2));
  fleet.row("run wall [s]", util::Table::num(run_wall_s, 2));
  fleet.row("kernel events", events);
  fleet.row("events/sec",
            util::Table::num(events_per_sec / 1e6, 2) + " M");
  fleet.row("callbacks stored", bed.kernel().callbacks_stored());
  fleet.row("tombstones pending", bed.kernel().tombstones());
  fleet.row("heap compactions", bed.kernel().compactions());
  fleet.row("devices reporting",
            std::to_string(reporting) + " / " +
                std::to_string(bed.device_count()));
  fleet.row("memberships", members);
  fleet.row("samples taken", samples);
  fleet.row("reports acked", reports_acked);
  fleet.row("records accepted", records_accepted);
  fleet.row("trace digest", bed.trace().digest());
  std::cout << fleet.render() << '\n';

  // -- JSON artifact -----------------------------------------------------------
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"kernel_naive\": {\"events\": " << naive.events
       << ", \"wall_s\": " << naive.wall_s
       << ", \"events_per_sec\": " << naive.events_per_sec
       << ", \"callbacks_stored\": " << naive.callbacks_stored << "},\n"
       << "  \"kernel_fast\": {\"events\": " << fast.events
       << ", \"wall_s\": " << fast.wall_s
       << ", \"events_per_sec\": " << fast.events_per_sec
       << ", \"callbacks_stored\": " << fast.callbacks_stored << "},\n"
       << "  \"scenario\": {\"name\": \"" << bed.spec().name << "\""
       << ", \"networks\": " << bed.network_count()
       << ", \"devices\": " << bed.device_count()
       << ", \"sim_duration_s\": " << duration_s
       << ", \"build_wall_s\": " << build_wall_s
       << ", \"run_wall_s\": " << run_wall_s << ", \"events\": " << events
       << ", \"events_per_sec\": " << events_per_sec
       << ", \"callbacks_stored\": " << bed.kernel().callbacks_stored()
       << ", \"tombstones\": " << bed.kernel().tombstones()
       << ", \"compactions\": " << bed.kernel().compactions()
       << ", \"devices_reporting\": " << reporting
       << ", \"samples\": " << samples
       << ", \"reports_acked\": " << reports_acked
       << ", \"records_accepted\": " << records_accepted
       << ", \"trace_digest\": " << bed.trace().digest() << "}\n"
       << "}\n";
  std::cout << "json: " << out_path << '\n';

  // -- 3. Sharded execution vs the single-threaded run -------------------------
  bool shard_ok = true;
  if (shards > 1) {
    core::ScenarioSpec shard_spec = make_spec();
    const auto shard_build_t0 = Clock::now();
    core::Testbed sharded{std::move(shard_spec), core::TestbedOptions{shards}};
    const double shard_build_wall_s = seconds_since(shard_build_t0);
    // Clock only the run so the speedup compares the same phase as the
    // single-threaded run_wall_s (construction is measured separately).
    const auto shard_t0 = Clock::now();
    sharded.start();
    sharded.run_for(sim::seconds_f(duration_s));
    const double shard_wall_s = seconds_since(shard_t0);
    const std::uint64_t digest_seq = bed.trace().digest();
    const std::uint64_t digest_par = sharded.trace().digest();
    const bool parity = digest_seq == digest_par;
    const double speedup = shard_wall_s > 0.0 ? run_wall_s / shard_wall_s : 0.0;
    const unsigned hw_threads = std::thread::hardware_concurrency();
    const bool speedup_enforceable = hw_threads >= sharded.shard_count();

    util::Table shard_table({"metric", "value"});
    shard_table.row("effective shards", sharded.shard_count());
    shard_table.row("hardware threads", hw_threads);
    shard_table.row("build wall [s]", util::Table::num(shard_build_wall_s, 2));
    shard_table.row("run wall [s]", util::Table::num(shard_wall_s, 2));
    shard_table.row("speedup vs 1 thread", util::Table::num(speedup, 2) + " x");
    shard_table.row("events", sharded.executed_events());
    shard_table.row("cross-shard posts", sharded.engine().cross_posts());
    shard_table.row("sync rounds", sharded.engine().sync_rounds());
    shard_table.row("digest parity", parity ? "PASS" : "FAIL");
    std::cout << "=== Sharded run (--shards " << shards << ") ===\n\n"
              << shard_table.render() << '\n';

    std::ofstream shard_json(shard_out_path);
    shard_json << "{\n"
               << "  \"scenario\": \"" << sharded.spec().name << "\""
               << ", \"networks\": " << sharded.network_count()
               << ", \"devices\": " << sharded.device_count()
               << ", \"sim_duration_s\": " << duration_s
               << ", \"requested_shards\": " << shards
               << ", \"effective_shards\": " << sharded.shard_count()
               << ", \"hardware_threads\": " << hw_threads
               << ", \"single_thread_wall_s\": " << run_wall_s
               << ", \"sharded_build_wall_s\": " << shard_build_wall_s
               << ", \"sharded_wall_s\": " << shard_wall_s
               << ", \"speedup\": " << speedup
               << ", \"events\": " << sharded.executed_events()
               << ", \"cross_shard_posts\": " << sharded.engine().cross_posts()
               << ", \"sync_rounds\": " << sharded.engine().sync_rounds()
               << ", \"digest_single\": " << digest_seq
               << ", \"digest_sharded\": " << digest_par
               << ", \"digest_parity\": " << (parity ? "true" : "false")
               << "\n}\n";
    std::cout << "json: " << shard_out_path << '\n';

    shard_ok = parity;
    if (speedup_enforceable && min_speedup > 0.0 && speedup < min_speedup) {
      shard_ok = false;
    }
    std::cout << "shard shape: parity " << (parity ? "PASS" : "FAIL");
    if (min_speedup > 0.0) {
      std::cout << "; speedup >= " << min_speedup << ": "
                << (speedup >= min_speedup
                        ? "PASS"
                        : (speedup_enforceable ? "FAIL" : "SKIP (cores)"));
    }
    std::cout << '\n';
  }

  // Shape checks: the fleet must actually form, and the fast path must beat
  // the per-tick baseline on stored callbacks (it stores each source once).
  const bool fleet_ok =
      reporting > bed.device_count() * 9 / 10 && records_accepted > 0;
  const bool fast_path_ok =
      fast.callbacks_stored * 100 < naive.callbacks_stored &&
      fast.events >= naive.events;
  std::cout << "shape check: fleet formed: " << (fleet_ok ? "PASS" : "FAIL")
            << "; fast path cheaper: " << (fast_path_ok ? "PASS" : "FAIL")
            << '\n';
  return fleet_ok && fast_path_ok && shard_ok ? 0 : 1;
}
