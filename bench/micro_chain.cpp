// Microbenchmarks for the blockchain substrate — quantifying the paper's
// claim that "creating the hash is not an expensive operation, and hence,
// does not expend significant computation power" (§II-A).

#include <benchmark/benchmark.h>

#include "chain/block.hpp"
#include "chain/ledger.hpp"
#include "chain/merkle.hpp"
#include "chain/permissioned.hpp"
#include "chain/sha256.hpp"
#include "util/rng.hpp"

namespace {

using namespace emon;

std::vector<chain::RecordBytes> make_records(std::size_t n,
                                             std::size_t size = 96) {
  util::Rng rng{7};
  std::vector<chain::RecordBytes> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    chain::RecordBytes rec(size);
    for (auto& b : rec) {
      b = static_cast<std::uint8_t>(rng.next());
    }
    out.push_back(std::move(rec));
  }
  return out;
}

void BM_Sha256_Throughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(n, 0xa5);
  for (auto _ : state) {
    auto digest = chain::Sha256::hash(
        std::span<const std::uint8_t>(data.data(), data.size()));
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Sha256_Throughput)->Arg(64)->Arg(1024)->Arg(65536);

void BM_MerkleRoot(benchmark::State& state) {
  const auto records = make_records(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto root = chain::records_merkle_root(records);
    benchmark::DoNotOptimize(root);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Arg(10)->Arg(100)->Arg(1000);

void BM_MerkleProofVerify(benchmark::State& state) {
  std::vector<chain::Digest> leaves;
  for (int i = 0; i < 1000; ++i) {
    leaves.push_back(chain::Sha256::hash("leaf" + std::to_string(i)));
  }
  chain::MerkleTree tree{leaves};
  const auto proof = tree.prove(500).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chain::MerkleTree::verify(leaves[500], proof, tree.root()));
  }
}
BENCHMARK(BM_MerkleProofVerify);

void BM_BlockCreation(benchmark::State& state) {
  // The paper's claim: one block per reporting window is cheap.  A block of
  // `n` records at RPi-scale record sizes.
  const auto records = make_records(static_cast<std::size_t>(state.range(0)));
  const chain::Digest prev = chain::Sha256::hash("prev");
  std::uint64_t index = 0;
  for (auto _ : state) {
    auto block = chain::make_block(index++, prev, 123456, "agg-1", records);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BlockCreation)->Arg(10)->Arg(50)->Arg(500);

void BM_BlockVerify(benchmark::State& state) {
  const auto block = chain::make_block(
      0, chain::zero_digest(), 0, "agg-1",
      make_records(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain::verify_block_integrity(block));
  }
}
BENCHMARK(BM_BlockVerify)->Arg(10)->Arg(50)->Arg(500);

void BM_ChainValidation(benchmark::State& state) {
  chain::Ledger ledger;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    ledger.append(make_records(50), i, "agg-1");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ledger.validate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChainValidation)->Arg(10)->Arg(100)->Arg(1000);

void BM_BlockSerializeRoundTrip(benchmark::State& state) {
  const auto block =
      chain::make_block(0, chain::zero_digest(), 0, "agg-1", make_records(50));
  for (auto _ : state) {
    auto bytes = chain::serialize_block(block);
    auto back = chain::deserialize_block(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_BlockSerializeRoundTrip);

void BM_PermissionedAppend(benchmark::State& state) {
  chain::PermissionedChain chain;
  chain.register_writer({"agg-1", "secret"});
  const auto records = make_records(50);
  std::int64_t ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.append("agg-1", "secret", records, ts++));
  }
}
BENCHMARK(BM_PermissionedAppend);

}  // namespace
