// In-text result — "The data communication between aggregators does not
// incur much delay (1 millisecond) as the backhaul network is assumed to
// have high bandwidth."
//
// Measures one-way delivery latency across the aggregator backhaul for
// direct links and multi-hop routes, at roam-records-sized payloads.

#include <iostream>

#include "net/backhaul.hpp"
#include "sim/kernel.hpp"
#include "util/stats.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  emon::util::LogConfig::set_level(emon::util::LogLevel::kError);
  using namespace emon;

  sim::Kernel kernel;
  net::Backhaul mesh{kernel, util::Rng{99}};

  std::map<std::string, sim::SimTime> received_at;
  for (const char* id : {"agg-1", "agg-2", "agg-3", "agg-4"}) {
    mesh.add_node(id, [&received_at, &kernel, id](const net::Frame&) {
      received_at[id] = kernel.now();
    });
  }
  net::ChannelParams link;
  link.base_latency = sim::microseconds(800);
  link.jitter = sim::microseconds(400);
  link.bandwidth_bps = 1e9;
  // Chain topology to exercise multi-hop: 1-2-3-4.
  mesh.add_link("agg-1", "agg-2", link);
  mesh.add_link("agg-2", "agg-3", link);
  mesh.add_link("agg-3", "agg-4", link);

  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"agg-1", "agg-2"}, {"agg-1", "agg-3"}, {"agg-1", "agg-4"}};
  util::Table table({"route", "hops", "payload [B]", "mean [ms]", "p99 [ms]"});

  std::cout << "=== Backhaul latency (paper: ~1 ms between aggregators) ===\n\n";
  bool one_hop_ok = false;
  for (const auto& [from, to] : pairs) {
    for (std::uint64_t payload : {128ULL, 4096ULL}) {
      util::SampleSet lat;
      for (int i = 0; i < 200; ++i) {
        const sim::SimTime sent = kernel.now();
        mesh.send(net::Frame{
            from, to, std::vector<std::uint8_t>(payload, 0xaa), 0});
        kernel.run();
        lat.add((received_at[to] - sent).to_millis());
      }
      const auto route = mesh.route(from, to);
      const std::size_t hops = route ? route->size() - 1 : 0;
      table.row(from + " -> " + to, hops, payload,
                util::Table::num(lat.mean(), 3),
                util::Table::num(lat.quantile(0.99), 3));
      if (hops == 1 && payload == 128 && lat.mean() > 0.5 &&
          lat.mean() < 1.5) {
        one_hop_ok = true;
      }
    }
  }
  std::cout << table.render() << '\n';
  std::cout << "messages delivered: " << mesh.messages_delivered() << '\n';
  std::cout << "shape check: one-hop mean ~1 ms: "
            << (one_hop_ok ? "PASS" : "FAIL") << '\n';
  return one_hop_ok ? 0 : 1;
}
