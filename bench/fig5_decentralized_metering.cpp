// Figure 5 — "Comparison of individual device measurements with the network
// aggregator measurement."
//
// Paper setup: one network, two ESP32 devices with INA219 sensors, plus the
// aggregator's own (centralized) measurement of the whole network.  The
// paper reports the aggregator value 0.9-8.2 % HIGHER than the sum of the
// device self-reports, attributed to ohmic losses and the sensors' 0.5 mA
// offset error.
//
// This bench reproduces the stacked-bar data: per 10 s bin, each device's
// reported mean current, their sum, and the aggregator's feeder measurement,
// with the relative gap.  The shape to check: gap always positive, inside
// (or near) the paper's 0.9-8.2 % band.

#include <fstream>
#include <iostream>

#include "core/scenario.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  emon::util::LogConfig::set_level(emon::util::LogLevel::kError);
  using namespace emon;

  // Strongly varying duty cycles so the 10 s bins span light and heavy
  // load mixes — at light load the fixed overhead terms dominate and the
  // relative gap rises, which is how the paper's band reaches 8.2 %.
  const auto wide_duty = [](const core::DeviceId& id, std::size_t index,
                            const util::SeedSequence& seeds) {
    const double low_ma = 3.0 + 2.0 * static_cast<double>(index);
    const double high_ma = 120.0 + 60.0 * static_cast<double>(index);
    const auto period =
        sim::milliseconds(17'000 + 6'000 * static_cast<std::int64_t>(index));
    const auto phase =
        sim::milliseconds(4'000 * static_cast<std::int64_t>(index));
    auto duty = std::make_shared<hw::DutyCycleLoad>(
        util::milliamps(low_ma), util::milliamps(high_ma), period, 0.45,
        phase);
    return hw::LoadProfilePtr(std::make_shared<hw::NoisyLoad>(
        std::move(duty), 0.05, sim::milliseconds(50),
        seeds.derive("load." + id)));
  };

  core::Testbed bed{core::FleetBuilder{}
                        .name("fig5")
                        .networks(1, 2)
                        .seed(11)
                        .load_factory(wide_duty)
                        .spec()};
  bed.start();
  const auto warmup = sim::seconds(20);  // registration handshakes
  const int bins = 10;
  const auto bin_width = sim::seconds(10);
  bed.run_for(warmup + bin_width * bins + sim::seconds(2));

  std::cout
      << "=== Figure 5: decentralized vs centralized metering ===\n"
      << "1 network, 2 devices, T_measure = 100 ms, " << bins
      << " bins x 10 s (20 s warm-up skipped)\n"
      << "paper result: aggregator reads 0.9-8.2 % above the device sum\n\n";

  util::Table table({"bin", "dev-1 [mA]", "dev-2 [mA]", "sum [mA]",
                     "aggregator [mA]", "gap [mA]", "gap [%]"});
  const auto& trace = bed.trace();
  double min_gap = 1e9;
  double max_gap = -1e9;
  std::ofstream csv("fig5_decentralized_metering.csv");
  csv << "bin,dev1_ma,dev2_ma,sum_ma,aggregator_ma,gap_pct\n";

  for (int bin = 0; bin < bins; ++bin) {
    const sim::SimTime from = sim::SimTime::zero() + warmup +
                              bin_width * bin;
    const sim::SimTime to = from + bin_width;
    // Device self-reports as accepted at the aggregator (by measurement
    // timestamp — the decentralized reading).
    const double d1 = trace.mean_in("reported.agg-1.dev-1", from, to);
    const double d2 = trace.mean_in("reported.agg-1.dev-2", from, to);
    // The aggregator's own feeder meter (the centralized reading).
    const double agg = trace.mean_in("feeder.agg-1", from, to);
    const double sum = d1 + d2;
    const double gap_pct = sum > 0.0 ? (agg - sum) / sum * 100.0 : 0.0;
    min_gap = std::min(min_gap, gap_pct);
    max_gap = std::max(max_gap, gap_pct);
    table.row(bin + 1, util::Table::num(d1, 2), util::Table::num(d2, 2),
              util::Table::num(sum, 2), util::Table::num(agg, 2),
              util::Table::num(agg - sum, 2), util::Table::num(gap_pct, 2));
    csv << bin + 1 << ',' << d1 << ',' << d2 << ',' << sum << ',' << agg
        << ',' << gap_pct << '\n';
  }
  std::cout << table.render() << '\n';
  std::cout << "measured gap range: " << util::Table::num(min_gap, 2) << " - "
            << util::Table::num(max_gap, 2) << " %   (paper: 0.9 - 8.2 %)\n";
  std::cout << "shape check        : "
            << (min_gap > 0.0 ? "PASS — aggregator always reads high"
                              : "FAIL — gap went negative")
            << '\n';
  std::cout << "error attribution  : INA219 offsets (|offset| <= 0.5 mA/part) "
               "+ ohmic losses + board overhead (see ablation bench)\n";
  std::cout << "csv                : fig5_decentralized_metering.csv\n";
  return min_gap > 0.0 ? 0 : 1;
}
