// Figure 6 — "Current consumption reported at Aggregator 1 for a mobile
// device transiting from network 1 to network 2, before and after
// connection establishment with Aggregator 2."
//
// Timeline reproduced:
//   * device reports to Aggregator 1 every 100 ms (left half),
//   * device unplugs and transits (Idle: no consumption, flat zero),
//   * device plugs into network 2 and handshakes for T_handshake
//     (consumption happens but is stored locally — it appears in the plot
//     with its measurement timestamps once flushed),
//   * after temporary membership, buffered + live data reach Aggregator 1
//     via Aggregator 2 and the backhaul.
//
// Output: 1 s-binned series of (a) current by measurement time as known to
// Aggregator 1 at the end, (b) arrival times showing the backfill burst.

#include <fstream>
#include <iostream>

#include "core/scenario.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  emon::util::LogConfig::set_level(emon::util::LogLevel::kError);
  using namespace emon;

  core::Testbed bed{core::paper_figure4(/*seed=*/2020)};
  bed.start();

  const auto depart = sim::seconds(60);
  const auto transit = sim::seconds(20);
  bed.kernel().schedule_at(sim::SimTime::zero() + depart, [&bed] {
    bed.device(0).move_to(
        bed.network_name(1),
        net::Position{bed.network_position(1).x + 2.0, 0.0},
        sim::seconds(20));
  });
  const auto total = sim::seconds(120);
  bed.run_for(total);

  auto& dev = bed.device(0);
  const auto& handshakes = dev.handshakes();

  std::cout << "=== Figure 6: mobile device transiting wan-1 -> wan-2 ===\n"
            << "T_measure = 100 ms; depart t=60 s; transit (Idle) = 20 s\n\n";

  // Timeline annotations, as in the figure.
  util::Table events({"event", "t [s]"});
  events.row("device disconnected from network 1",
             util::Table::num(depart.to_seconds(), 1));
  events.row("device connected to network 2 (plug-in)",
             util::Table::num((depart + transit).to_seconds(), 1));
  if (handshakes.size() >= 2) {
    const auto& roam = handshakes[1];
    events.row("temporary membership established",
               util::Table::num(roam.completed_at.to_seconds(), 1));
    events.row("T_handshake", util::Table::num(roam.duration().to_seconds(), 2));
  }
  // First arrival of roamed data at the master.
  const auto& arrivals = bed.trace().series("arrival.agg-1.dev-1");
  for (const auto& p : arrivals) {
    if (p.time > sim::SimTime::zero() + depart) {
      events.row("device data received from network 2 (at agg-1)",
                 util::Table::num(p.time.to_seconds(), 1));
      break;
    }
  }
  std::cout << events.render() << '\n';

  // The reported-current series (by measurement timestamp), binned at 1 s —
  // this is the curve of Figure 6 as Aggregator 1 can reconstruct it.
  const auto& trace = bed.trace();
  std::ofstream csv("fig6_mobility_transition.csv");
  csv << "time_s,reported_ma,phase\n";
  util::Table series({"t [s]", "reported at agg-1 [mA]", "phase"});
  const double hs_end = handshakes.size() >= 2
                            ? handshakes[1].completed_at.to_seconds()
                            : 0.0;
  for (int s = 0; s < static_cast<int>(total.to_seconds()); s += 2) {
    const sim::SimTime from{sim::seconds(s).ns()};
    const sim::SimTime to{sim::seconds(s + 2).ns()};
    const double ma = trace.mean_in("reported.agg-1.dev-1", from, to);
    const char* phase = "reporting to agg-1";
    const double t0 = depart.to_seconds();
    const double t1 = (depart + transit).to_seconds();
    if (s >= t0 && s < t1) {
      phase = "Idle (transit)";
    } else if (s >= t1 && s < hs_end) {
      phase = "T_handshake (stored locally, backfilled)";
    } else if (s >= t1) {
      phase = "reporting via agg-2 (temporary member)";
    }
    series.row(s, util::Table::num(ma, 2), phase);
    csv << s << ',' << ma << ',' << phase << '\n';
  }
  std::cout << series.render() << '\n';

  // Shape checks mirroring the paper's claims.
  bool idle_flat = true;
  for (const auto& p : trace.series("reported.agg-1.dev-1")) {
    const double t = p.time.to_seconds();
    if (t > depart.to_seconds() + 0.2 &&
        t < (depart + transit).to_seconds() - 0.2 && p.value > 1.0) {
      idle_flat = false;
    }
  }
  int backfilled = 0;
  for (const auto& p : trace.series("reported.agg-1.dev-1")) {
    const double t = p.time.to_seconds();
    if (t >= (depart + transit).to_seconds() && t < hs_end && p.value > 1.0) {
      ++backfilled;
    }
  }
  std::cout << "idle window flat at zero   : " << (idle_flat ? "PASS" : "FAIL")
            << '\n';
  std::cout << "handshake window backfilled: " << backfilled
            << " records (expect ~" << static_cast<int>((hs_end - 80.0) * 10)
            << " at 10 Hz) — " << (backfilled > 30 ? "PASS" : "FAIL") << '\n';
  std::cout << "records forwarded by agg-2 : "
            << bed.aggregator(0).stats().roam_records_received << '\n';
  std::cout << "csv                        : fig6_mobility_transition.csv\n";
  return (idle_flat && backfilled > 30) ? 0 : 1;
}
