// Ablation — decomposition of the Figure 5 measurement gap.
//
// The paper attributes the 0.9-8.2 % centralized-vs-decentralized gap to
// "the ohmic losses of various electrical components and the measurement
// error of the current sensor".  The model makes each term a parameter, so
// we can switch them off one at a time and attribute the gap:
//   * sensor offset error (INA219, ±0.5 mA/part)
//   * sensor gain error   (±0.5 %/part)
//   * proportional ohmic/conversion losses (loss_fraction)
//   * board overhead quiescent current
//
// Also sweeps load level: at light loads the fixed terms dominate (higher
// relative gap), matching why the paper sees a band rather than a point.

#include <iostream>

#include "core/scenario.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

struct Config {
  const char* name;
  bool sensor_offset;
  bool sensor_gain;
  double loss_fraction;
  double overhead_ma;
};

double measure_gap_pct(const Config& config, double level_scale) {
  using namespace emon;
  grid::DistributionParams grid_params;
  grid_params.loss_fraction = config.loss_fraction;
  grid_params.overhead_quiescent = util::milliamps(config.overhead_ma);
  core::Testbed bed{
      core::FleetBuilder{}
          .name("ablation")
          .networks(1, 2)
          .seed(77)
          .grid(grid_params)
          .load_factory([level_scale](const core::DeviceId& id,
                                      std::size_t index,
                                      const util::SeedSequence& seeds) {
            (void)seeds;
            (void)id;
            const double base =
                (30.0 + 40.0 * static_cast<double>(index)) * level_scale;
            return hw::LoadProfilePtr(
                std::make_shared<hw::ConstantLoad>(util::milliamps(base)));
          })
          .spec()};
  bed.start();
  bed.run_for(sim::seconds(50));

  const auto& trace = bed.trace();
  const sim::SimTime from{sim::seconds(20).ns()};
  const sim::SimTime to{sim::seconds(50).ns()};
  const double d1 = trace.mean_in("reported.agg-1.dev-1", from, to);
  const double d2 = trace.mean_in("reported.agg-1.dev-2", from, to);
  const double agg = trace.mean_in("feeder.agg-1", from, to);
  const double sum = d1 + d2;
  return sum > 0.0 ? (agg - sum) / sum * 100.0 : 0.0;
}

}  // namespace

int main() {
  emon::util::LogConfig::set_level(emon::util::LogLevel::kError);
  using emon::util::Table;

  std::cout << "=== Ablation: Figure 5 error-source decomposition ===\n\n";

  // NOTE on sensor terms: offsets/gains are per-part draws from the
  // datasheet band.  They are ablated through the loss/overhead = 0 rows:
  // whatever gap remains there is the sensor contribution.
  const Config configs[] = {
      {"full model (defaults)", true, true, 0.03, 2.0},
      {"no proportional losses", true, true, 0.0, 2.0},
      {"no board overhead", true, true, 0.03, 0.0},
      {"sensors only (no loss, no overhead)", true, true, 0.0, 0.0},
  };

  Table table({"configuration", "gap @ 1x load [%]", "gap @ 0.4x load [%]",
               "gap @ 2x load [%]"});
  for (const auto& config : configs) {
    table.row(config.name,
              Table::num(measure_gap_pct(config, 1.0), 2),
              Table::num(measure_gap_pct(config, 0.4), 2),
              Table::num(measure_gap_pct(config, 2.0), 2));
  }
  std::cout << table.render() << '\n';

  std::cout
      << "reading the table:\n"
      << "  * 'sensors only' row ~= pure INA219 offset/gain contribution\n"
      << "  * overhead term dominates at light load (fixed mA vs small sum)\n"
      << "  * loss_fraction contributes a constant ~3 % independent of load\n"
      << "  * the paper's 0.9-8.2 % band emerges from load level variation\n";
  return 0;
}
