// Scenario × seed determinism matrix — the whole-system reproducibility
// gate behind the emon_lint determinism rules (wall-clock, unordered-iter-
// escape, unseeded-rng, ptr-order): every canned scenario, at two seeds
// and at {1, 4} shards, runs to a Trace::digest() that
//
//   * is bit-identical between 1-shard and 4-shard execution (hard gate
//     here — the conservative-lookahead contract), and
//   * matches the checked-in table tools/determinism_matrix.json across
//     revisions (tools/check_determinism_matrix.py diffs the artifact; a
//     digest drift means a behavioural change that must be intentional
//     and re-pinned with --update).
//
// Also gates that the two seeds differ (a scenario whose digest ignores
// the seed has lost its stochastic wiring).
//
// Writes BENCH_determinism.json (digests as hex strings — JSON numbers
// cannot carry 64 bits exactly).
//
// Flags: --duration-s X   simulated seconds per run (default 10)
//        --scenario NAME  restrict to one canned scenario (repeatable)
//        --out FILE       (default BENCH_determinism.json)

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "util/log.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

struct Entry {
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t shards = 0;
  std::uint64_t digest = 0;
  double wall_s = 0.0;
};

Entry run_one(const std::string& name, std::uint64_t seed, std::size_t shards,
              double duration_s) {
  using namespace emon;
  Entry e;
  e.scenario = name;
  e.seed = seed;
  e.shards = shards;
  const auto t0 = Clock::now();
  core::Testbed bed{core::canned_scenario(name, seed),
                    core::TestbedOptions{shards}};
  bed.start();
  bed.run_for(sim::seconds_f(duration_s));
  e.digest = bed.trace().digest();
  e.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emon;
  util::LogConfig::set_level(util::LogLevel::kError);

  double duration_s = 10.0;
  std::vector<std::string> scenarios;
  std::string out_path = "BENCH_determinism.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--duration-s") {
      duration_s = std::stod(value);
    } else if (flag == "--scenario") {
      scenarios.push_back(value);
    } else if (flag == "--out") {
      out_path = value;
    } else {
      std::cerr << "unknown flag " << flag << '\n';
      return 2;
    }
  }
  if (scenarios.empty()) {
    scenarios = core::canned_scenario_names();
  }
  const std::vector<std::uint64_t> seeds = {1, 2};
  const std::vector<std::size_t> shard_counts = {1, 4};

  std::vector<Entry> entries;
  bool shard_parity = true;
  bool seed_sensitivity = true;
  for (const auto& name : scenarios) {
    for (const std::uint64_t seed : seeds) {
      std::vector<Entry> per_shards;
      for (const std::size_t shards : shard_counts) {
        per_shards.push_back(run_one(name, seed, shards, duration_s));
        const Entry& e = per_shards.back();
        std::cout << name << " seed=" << seed << " shards=" << shards
                  << " digest=" << hex64(e.digest) << " ("
                  << e.wall_s << " s)\n";
      }
      for (std::size_t i = 1; i < per_shards.size(); ++i) {
        if (per_shards[i].digest != per_shards[0].digest) {
          shard_parity = false;
          std::cerr << "SHARD PARITY FAIL: " << name << " seed=" << seed
                    << ": shards=" << per_shards[0].shards << " -> "
                    << hex64(per_shards[0].digest) << " but shards="
                    << per_shards[i].shards << " -> "
                    << hex64(per_shards[i].digest) << '\n';
        }
      }
      entries.insert(entries.end(), per_shards.begin(), per_shards.end());
    }
    // The two seeds' 1-shard digests must differ.
    std::uint64_t d1 = 0;
    std::uint64_t d2 = 0;
    for (const Entry& e : entries) {
      if (e.scenario == name && e.shards == shard_counts[0]) {
        (e.seed == seeds[0] ? d1 : d2) = e.digest;
      }
    }
    if (d1 == d2) {
      seed_sensitivity = false;
      std::cerr << "SEED SENSITIVITY FAIL: " << name
                << " ignores its seed (digest " << hex64(d1) << ")\n";
    }
  }

  std::ofstream json(out_path);
  json << "{\n  \"duration_s\": " << duration_s << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    json << "    {\"scenario\": \"" << e.scenario << "\", \"seed\": "
         << e.seed << ", \"shards\": " << e.shards << ", \"digest\": \""
         << hex64(e.digest) << "\", \"wall_s\": " << e.wall_s << "}"
         << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"shard_parity\": " << (shard_parity ? "true" : "false")
       << ",\n  \"seed_sensitivity\": "
       << (seed_sensitivity ? "true" : "false") << "\n}\n";
  std::cout << "json: " << out_path << '\n';

  std::cout << "gates: shard parity " << (shard_parity ? "PASS" : "FAIL")
            << "; seed sensitivity "
            << (seed_sensitivity ? "PASS" : "FAIL") << '\n';
  return (shard_parity && seed_sensitivity) ? 0 : 1;
}
