// Microbenchmarks for the embedded time-series store (src/store/): ingest
// throughput, sealed-segment compression vs the serialize_record wire
// baseline, lazy decode rate and query latencies.  Counters carry the
// storage metrics (bytes_per_record, compression_x, records pruned) so the
// google-benchmark JSON output (--benchmark_format/--benchmark_out=json, the
// CI bench-smoke step) is machine-readable end to end.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/records.hpp"
#include "store/segment.hpp"
#include "store/series_store.hpp"
#include "store/tsdb.hpp"
#include "util/rng.hpp"

namespace {

using namespace emon;

/// The benchmark workload: a realistic 10 Hz stream — jittered timestamps,
/// noisy current over a slow ramp, occasional network changes.
std::vector<core::ConsumptionRecord> workload(std::size_t n,
                                              std::uint64_t seed,
                                              const std::string& device) {
  util::Rng rng{seed};
  std::vector<core::ConsumptionRecord> out;
  out.reserve(n);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += 100'000'000 + static_cast<std::int64_t>(rng.uniform(-50e3, 50e3));
    core::ConsumptionRecord r;
    r.device_id = device;
    r.sequence = i + 1;
    r.timestamp_ns = t;
    r.interval_ns = 100'000'000;
    r.current_ma =
        250.0 + 0.05 * static_cast<double>(i % 4096) + rng.uniform(-4.0, 4.0);
    r.bus_voltage_mv = 5000.0 + rng.uniform(-8.0, 8.0);
    r.energy_mwh = r.current_ma * 5.0 * (0.1 / 3600.0);
    r.network = i % 97 == 0 ? "wan-2" : "wan-1";
    out.push_back(std::move(r));
  }
  return out;
}

// -- Compression vs the wire baseline ----------------------------------------

void BM_SegmentSealCompression(benchmark::State& state) {
  const auto records =
      workload(static_cast<std::size_t>(state.range(0)), 1, "dev-1");
  std::size_t baseline_bytes = 0;
  for (const auto& r : records) {
    baseline_bytes += core::serialize_record(r).size();
  }
  std::size_t sealed_bytes = 0;
  for (auto _ : state) {
    store::SegmentBuilder builder;
    for (const auto& r : records) {
      builder.append(r);
    }
    store::Segment seg = builder.seal();
    sealed_bytes = seg.byte_size();
    benchmark::DoNotOptimize(seg);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  const auto n = static_cast<double>(records.size());
  state.counters["sealed_bytes"] = static_cast<double>(sealed_bytes);
  state.counters["baseline_bytes"] = static_cast<double>(baseline_bytes);
  state.counters["bytes_per_record"] = static_cast<double>(sealed_bytes) / n;
  state.counters["baseline_bytes_per_record"] =
      static_cast<double>(baseline_bytes) / n;
  // The acceptance bar: sealed storage >= 3x smaller than serialize_record.
  state.counters["compression_x"] =
      static_cast<double>(baseline_bytes) / static_cast<double>(sealed_bytes);
}
BENCHMARK(BM_SegmentSealCompression)->Arg(64)->Arg(256)->Arg(4096);

void BM_SegmentDecode(benchmark::State& state) {
  const auto records =
      workload(static_cast<std::size_t>(state.range(0)), 2, "dev-1");
  store::SegmentBuilder builder;
  for (const auto& r : records) {
    builder.append(r);
  }
  const store::Segment seg = builder.seal();
  for (auto _ : state) {
    store::SegmentCursor cur = seg.cursor();
    while (auto rec = cur.next()) {
      benchmark::DoNotOptimize(*rec);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SegmentDecode)->Arg(256)->Arg(4096);

// -- Ingest throughput --------------------------------------------------------

void BM_TsdbIngest(benchmark::State& state) {
  const auto records = workload(100'000, 3, "dev-1");
  std::size_t i = 0;
  // unique_ptr: Tsdb is immovable (it embeds the reader-epoch domain), so a
  // fresh store means a fresh allocation.
  auto db = std::make_unique<store::Tsdb>();
  std::uint64_t rebuilds = 0;
  for (auto _ : state) {
    if (i == records.size()) {
      // Fresh store once the prepared stream is exhausted (sequence dedup
      // would otherwise reject everything).
      state.PauseTiming();
      db = std::make_unique<store::Tsdb>();
      i = 0;
      ++rebuilds;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(db->ingest(records[i++]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["sealed_bytes"] =
      static_cast<double>(db->stats().sealed_bytes);
}
BENCHMARK(BM_TsdbIngest);

void BM_SeriesStorePush(benchmark::State& state) {
  const auto records = workload(100'000, 4, "dev-1");
  store::SeriesStoreOptions opt;
  opt.byte_budget = 256 * 1024;
  store::SeriesStore series{opt};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(series.push(records[i])) ;
    i = (i + 1) % records.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["bytes_used"] = static_cast<double>(series.bytes_used());
  state.counters["dropped"] = static_cast<double>(series.dropped());
}
BENCHMARK(BM_SeriesStorePush);

// -- Query latency ------------------------------------------------------------

store::Tsdb& query_fixture() {
  static store::Tsdb db{store::TsdbOptions{8, 256}};
  [[maybe_unused]] static const bool loaded = [] {
    for (std::size_t d = 0; d < 8; ++d) {
      for (const auto& r :
           workload(20'000, 10 + d, "dev-" + std::to_string(d + 1))) {
        db.ingest(r);
      }
    }
    return true;
  }();
  return db;
}

void BM_TsdbRangeAggregate(benchmark::State& state) {
  // ~2000 s of history per device; aggregate the middle half.
  store::Tsdb& db = query_fixture();
  const std::int64_t t0 = 500'000'000'000;
  const std::int64_t t1 = 1'500'000'000'000;
  for (auto _ : state) {
    auto agg = db.aggregate("dev-3", t0, t1);
    benchmark::DoNotOptimize(agg);
  }
  state.counters["summary_hits"] =
      static_cast<double>(db.stats().summary_hits);
}
BENCHMARK(BM_TsdbRangeAggregate);

void BM_TsdbWindowScan(benchmark::State& state) {
  // The aggregator's verification-window read: 1 s of live records.
  store::Tsdb& db = query_fixture();
  store::RecordFilter live;
  live.network = "wan-1";
  live.stored_offline = false;
  std::int64_t t0 = 0;
  for (auto _ : state) {
    auto stats = db.current_stats("dev-5", t0, t0 + 1'000'000'000, live);
    benchmark::DoNotOptimize(stats);
    t0 = (t0 + 1'000'000'000) % 1'900'000'000'000;
  }
}
BENCHMARK(BM_TsdbWindowScan);

void BM_TsdbDownsample(benchmark::State& state) {
  // Dashboard-style query: 100 s of history in 10 s buckets.
  store::Tsdb& db = query_fixture();
  for (auto _ : state) {
    auto windows = db.downsample("dev-2", 0, 100'000'000'000,
                                 10'000'000'000);
    benchmark::DoNotOptimize(windows);
  }
}
BENCHMARK(BM_TsdbDownsample);

void BM_TsdbNetworkBreakdown(benchmark::State& state) {
  // The billing read: per-network subtotals from segment dictionaries.
  store::Tsdb& db = query_fixture();
  for (auto _ : state) {
    auto breakdown = db.network_breakdown("dev-7");
    benchmark::DoNotOptimize(breakdown);
  }
}
BENCHMARK(BM_TsdbNetworkBreakdown);

}  // namespace
