// Roll-up maintenance + push subscription benchmark — the cost of keeping
// materialized windows at ingest, and the fan-out cost of pushing closed
// windows to MQTT dashboard subscribers, under the 10,000-device /
// 32-network metro_fleet record shape.
//
// Three phases:
//   P1 baseline ingest     Tsdb alone, no ingest hook (ns/record floor)
//   P2 maintained ingest   same workload with a RollupEngine hook and a
//                          fleet-wide 1 s tumbling rollup, drained
//                          periodically like the aggregator's pump loop.
//                          The headline number is the ingest overhead:
//                          (P2 - P1) / P1.
//   P3 push fan-out        N dashboard clients subscribed over a real
//                          broker; every closed window is encoded once per
//                          subscriber and delivered through the sim kernel.
//                          Reports wall-clock us per push and the broker's
//                          coalesced-frame accounting.
//
// Bit parity is the hard gate (exit 1): every window the maintained rollup
// emitted in P2 must equal the cold fleet query over the same range.  The
// ingest overhead is recorded in the JSON artifact; an optional
// --max-overhead X gates on it for quiet machines (hosted CI runners are
// too noisy for a perf floor to gate merges on).
//
// Flags: --devices N       (default 10000)
//        --networks N      (default 32)
//        --records N       per device (default 120)
//        --shards N        Tsdb shards (default 64)
//        --repeat N        timed repetitions, phases interleaved per rep,
//                          best kept (default 5)
//        --subscribers N   dashboard clients in P3 (default 8)
//        --drain-every N   records between pump()s (default 5000)
//        --seed N          (default 1)
//        --out FILE        (default BENCH_rollup.json)
//        --max-overhead X  fail if ingest overhead exceeds X (e.g. 0.15;
//                          default 0 = record only)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/protocol.hpp"
#include "core/records.hpp"
#include "core/subscription.hpp"
#include "net/channel.hpp"
#include "net/mqtt.hpp"
#include "sim/kernel.hpp"
#include "store/query_engine.hpp"
#include "store/rollup.hpp"
#include "store/tsdb.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using emon::core::ConsumptionRecord;
using emon::core::DeviceId;
using emon::core::NetworkId;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double median(std::vector<double> v) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/// metro_fleet-shaped ingest (same generator shape as query_scale): round-
/// robin interleaved jittered 10 Hz streams, every 8th device roaming to
/// the neighbouring WAN for the middle sixth of its stream, 1-in-5 records
/// offline-buffered.  Unlike query_scale, arrival stays inside the rollup's
/// 500 ms lateness horizon: roamed slices arrive in order and device phases
/// are staggered < 100 ms (not d * 9 ms, which at fleet scale spreads one
/// round-robin round over minutes).  Records beyond the horizon are
/// deliberately invisible to the maintained rollup — the cold path serves
/// them, a contract pinned by tests/test_rollup.cpp — so a bounded-disorder
/// arrival (records_dropped_late == 0, gated below) is what makes the
/// end-of-run parity comparison here meaningful.
std::vector<ConsumptionRecord> make_workload(std::size_t devices,
                                             std::size_t networks,
                                             std::size_t per_device,
                                             std::uint64_t seed) {
  std::vector<std::vector<ConsumptionRecord>> streams(devices);
  emon::util::Rng rng{seed};
  for (std::size_t d = 0; d < devices; ++d) {
    const DeviceId id = "dev-" + std::to_string(d + 1);
    const NetworkId home = "wan-" + std::to_string(d % networks);
    const NetworkId visited = "wan-" + std::to_string((d + 1) % networks);
    const bool roams = d % 8 == 0;
    std::vector<ConsumptionRecord> live;
    std::int64_t t = static_cast<std::int64_t>(d % 97) * 1'000'000;
    for (std::size_t i = 0; i < per_device; ++i) {
      t += 100'000'000 + static_cast<std::int64_t>(rng.uniform(-50e3, 50e3));
      ConsumptionRecord r;
      r.device_id = id;
      r.sequence = i + 1;
      r.timestamp_ns = t;
      r.interval_ns = 100'000'000;
      r.current_ma = 150.0 + 40.0 * static_cast<double>(d % 7) +
                     rng.uniform(-5.0, 5.0);
      r.bus_voltage_mv = 5000.0 + rng.uniform(-10.0, 10.0);
      r.energy_mwh = r.current_ma * 5.0 * (0.1 / 3600.0);
      const bool away = roams && i >= per_device / 3 && i < per_device / 2;
      r.network = away ? visited : home;
      r.stored_offline = i % 5 == 0;
      live.push_back(std::move(r));
    }
    streams[d] = std::move(live);
  }
  std::vector<ConsumptionRecord> arrival;
  arrival.reserve(devices * per_device);
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (auto& stream : streams) {
      if (i < stream.size()) {
        arrival.push_back(std::move(stream[i]));
        any = true;
      }
    }
    if (!any) {
      break;
    }
  }
  return arrival;
}

bool aggregates_equal(const emon::store::DeviceAggregate& a,
                      const emon::store::DeviceAggregate& b) {
  return a.count == b.count && a.t_min_ns == b.t_min_ns &&
         a.t_max_ns == b.t_max_ns && a.min_current_ma == b.min_current_ma &&
         a.max_current_ma == b.max_current_ma &&
         a.avg_current_ma == b.avg_current_ma &&
         a.sum_energy_mwh == b.sum_energy_mwh;
}

emon::store::RollupSpec fleet_rollup_spec() {
  emon::store::RollupSpec spec;
  spec.window_ns = 1'000'000'000;  // 1 s tumbling, the dashboard default
  spec.slide_ns = 1'000'000'000;
  spec.lateness_ns = 500'000'000;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emon;
  util::LogConfig::set_level(util::LogLevel::kError);

  std::size_t devices = 10'000;
  std::size_t networks = 32;
  std::size_t per_device = 120;
  std::size_t shards = 64;
  std::size_t repeat = 5;
  std::size_t subscribers = 8;
  std::size_t drain_every = 5'000;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_rollup.json";
  double max_overhead = 0.0;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--devices") {
      devices = std::stoul(value);
    } else if (flag == "--networks") {
      networks = std::stoul(value);
    } else if (flag == "--records") {
      per_device = std::stoul(value);
    } else if (flag == "--shards") {
      shards = std::stoul(value);
    } else if (flag == "--repeat") {
      repeat = std::stoul(value);
    } else if (flag == "--subscribers") {
      subscribers = std::stoul(value);
    } else if (flag == "--drain-every") {
      drain_every = std::stoul(value);
    } else if (flag == "--seed") {
      seed = std::stoull(value);
    } else if (flag == "--out") {
      out_path = value;
    } else if (flag == "--max-overhead") {
      max_overhead = std::stod(value);
    } else {
      std::cerr << "unknown flag " << flag << '\n';
      return 2;
    }
  }
  repeat = std::max<std::size_t>(1, repeat);
  drain_every = std::max<std::size_t>(1, drain_every);

  const auto workload = make_workload(devices, networks, per_device, seed);
  const double total_records = static_cast<double>(workload.size());
  std::cout << "=== Roll-up maintenance: " << devices << " devices / "
            << networks << " networks, " << workload.size()
            << " records ===\n\n";

  // -- P1/P2: baseline vs maintained ingest -----------------------------------
  // The two phases alternate inside every repetition (baseline rep, then
  // maintained rep) so transient machine noise degrades both paths alike;
  // min-of-reps then yields a fair overhead ratio.
  double baseline_ms = 1e300;
  double rollup_ms = 1e300;
  std::vector<double> baseline_rep;
  std::vector<double> rollup_rep;
  std::uint64_t windows_closed = 0;
  std::uint64_t records_folded = 0;
  std::uint64_t records_dropped = 0;
  bool parity = true;
  std::size_t windows_checked = 0;
  for (std::size_t rep = 0; rep < repeat; ++rep) {
    {
      store::Tsdb db{store::TsdbOptions{shards, 32}};
      const auto t0 = Clock::now();
      for (const auto& r : workload) {
        db.ingest(r);
      }
      baseline_rep.push_back(ms_since(t0));
      baseline_ms = std::min(baseline_ms, baseline_rep.back());
    }

    store::Tsdb db{store::TsdbOptions{shards, 32}};
    store::RollupEngine rollups{db};
    db.set_ingest_hook(&rollups);
    const std::uint64_t id = rollups.register_rollup(fleet_rollup_spec());
    std::vector<store::ClosedWindow> closed;
    const auto t0 = Clock::now();
    std::size_t n = 0;
    for (const auto& r : workload) {
      db.ingest(r);
      if (++n % drain_every == 0) {
        auto drained = rollups.drain(id);
        closed.insert(closed.end(),
                      std::make_move_iterator(drained.begin()),
                      std::make_move_iterator(drained.end()));
      }
    }
    auto drained = rollups.drain(id);
    closed.insert(closed.end(), std::make_move_iterator(drained.begin()),
                  std::make_move_iterator(drained.end()));
    rollup_rep.push_back(ms_since(t0));
    rollup_ms = std::min(rollup_ms, rollup_rep.back());
    const store::RollupStats* stats = rollups.stats(id);
    windows_closed = stats->windows_closed;
    records_folded = stats->records_folded;
    records_dropped = stats->records_dropped_late;

    if (rep == 0) {
      // Hard gate: every emitted window must be bit-identical to the cold
      // fleet query over its range.  (Windows still open at the end of the
      // stream are not emitted; the cold path serves them.)
      const store::QueryEngine engine{db, store::QueryEngineOptions{4}};
      for (const auto& w : closed) {
        store::QuerySpec q;
        q.t0_ns = w.t0_ns;
        q.t1_ns = w.t1_ns;
        const auto cold = engine.aggregate(q);
        bool ok = aggregates_equal(w.merged, cold.merged) &&
                  w.per_device.size() == cold.per_device.size();
        for (std::size_t i = 0; ok && i < w.per_device.size(); ++i) {
          ok = w.per_device[i].first == cold.per_device[i].first &&
               aggregates_equal(w.per_device[i].second,
                                cold.per_device[i].second);
        }
        if (!ok) {
          parity = false;
          std::cerr << "PARITY FAIL at window [" << w.t0_ns << ", "
                    << w.t1_ns << ")\n";
        }
        ++windows_checked;
      }
    }
  }
  // Overhead = median of per-rep paired ratios.  Each rep times the two
  // paths back-to-back, so a slow epoch on a shared machine degrades both
  // sides of the pair and cancels in the ratio; the median then rejects
  // reps that straddle an epoch boundary.  (A ratio of min-walls is NOT
  // robust here: the two mins can land in different epochs.)
  std::vector<double> overhead_rep;
  for (std::size_t i = 0; i < rollup_rep.size(); ++i) {
    if (baseline_rep[i] > 0.0) {
      overhead_rep.push_back(rollup_rep[i] / baseline_rep[i] - 1.0);
    }
  }
  const double overhead = median(overhead_rep);

  // -- P3: push fan-out over a real broker ------------------------------------
  sim::Kernel kernel;
  net::MqttBroker broker{kernel, "agg-1"};
  store::Tsdb push_db{store::TsdbOptions{shards, 32}};
  store::RollupEngine push_rollups{push_db};
  push_db.set_ingest_hook(&push_rollups);
  core::SubscriptionService service{broker, push_rollups, /*anchor_ns=*/0,
                                    /*default_lateness_ns=*/500'000'000};
  service.attach();

  std::vector<std::unique_ptr<net::MqttClient>> clients;
  std::uint64_t pushes_received = 0;
  for (std::size_t s = 0; s < subscribers; ++s) {
    const std::string client_id = "dash-" + std::to_string(s + 1);
    auto client = std::make_unique<net::MqttClient>(kernel, client_id);
    net::ChannelParams params;
    params.base_latency = sim::milliseconds(2);
    params.jitter = sim::Duration{0};
    client->connect(
        broker,
        std::make_shared<net::Channel>(kernel, params, util::Rng{seed + s}),
        std::make_shared<net::Channel>(kernel, params,
                                       util::Rng{seed + s + 1000}),
        [](bool) {});
    kernel.run();
    // The SubscribeAck rides the same per-client push topic, so count only
    // decoded RollupPush frames.
    client->subscribe(core::protocol::topic_push(client_id),
                      [&pushes_received](const net::MqttMessage& m) {
                        const auto decoded = core::protocol::decode_any(m.payload);
                        if (decoded.ok() &&
                            std::holds_alternative<core::RollupPush>(
                                decoded.value())) {
                          ++pushes_received;
                        }
                      });
    core::SubscribeRequest req;
    req.client_id = client_id;
    req.subscription_id = 1;
    req.window_ns = 1'000'000'000;
    req.lateness_ns = -1;
    client->publish(std::string(core::protocol::kTopicSubscribe),
                    core::protocol::seal(req), 1);
    kernel.run();
    clients.push_back(std::move(client));
  }
  const bool all_subscribed =
      service.active_subscriptions() == subscribers &&
      service.active_rollups() == 1;  // equal specs share one rollup

  double push_ms = 0.0;
  {
    const auto t0 = Clock::now();
    std::size_t n = 0;
    for (const auto& r : workload) {
      push_db.ingest(r);
      if (++n % drain_every == 0) {
        service.pump();
        kernel.run();
      }
    }
    service.pump();
    kernel.run();
    push_ms = ms_since(t0);
  }
  const auto& sub_stats = service.stats();
  const auto& broker_stats = broker.transport_stats();
  // Marginal push cost against the epoch-stable P2 reference (median rep),
  // not the min wall — informational, not gated.  P3 runs once, so on a
  // noisy host it can land in a faster epoch than the P2 median; clamp at
  // zero rather than report a negative cost.
  const double push_us_avg =
      sub_stats.pushes_sent > 0
          ? std::max(0.0, (push_ms - median(rollup_rep)) * 1000.0 /
                              static_cast<double>(sub_stats.pushes_sent))
          : 0.0;
  const bool delivery_ok = pushes_received == sub_stats.pushes_sent &&
                           sub_stats.pushes_sent ==
                               sub_stats.windows_pushed * subscribers;

  // -- Report -----------------------------------------------------------------
  util::Table table({"phase", "wall [ms]", "ns/record", "notes"});
  table.row("P1 baseline ingest", util::Table::num(baseline_ms, 1),
            util::Table::num(baseline_ms * 1e6 / total_records, 0), "");
  table.row("P2 maintained ingest", util::Table::num(rollup_ms, 1),
            util::Table::num(rollup_ms * 1e6 / total_records, 0),
            "overhead " + util::Table::num(overhead * 100.0, 1) + " %, " +
                std::to_string(windows_closed) + " windows");
  table.row("P3 ingest+push x" + std::to_string(subscribers),
            util::Table::num(push_ms, 1),
            util::Table::num(push_ms * 1e6 / total_records, 0),
            std::to_string(sub_stats.pushes_sent) + " pushes, " +
                util::Table::num(push_us_avg, 1) + " us/push");
  std::cout << table.render() << '\n';

  // -- JSON artifact ----------------------------------------------------------
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"devices\": " << devices << ", \"networks\": " << networks
       << ", \"records_per_device\": " << per_device
       << ", \"records\": " << workload.size()
       << ", \"shards\": " << shards
       << ", \"drain_every\": " << drain_every << ",\n"
       << "  \"baseline_ingest_ms\": " << baseline_ms
       << ", \"rollup_ingest_ms\": " << rollup_ms
       << ", \"baseline_ns_per_record\": " << baseline_ms * 1e6 / total_records
       << ", \"rollup_ns_per_record\": " << rollup_ms * 1e6 / total_records
       << ", \"ingest_overhead\": " << overhead << ",\n"
       << "  \"windows_closed\": " << windows_closed
       << ", \"records_folded\": " << records_folded
       << ", \"records_dropped_late\": " << records_dropped
       << ", \"windows_checked\": " << windows_checked
       << ", \"parity\": " << (parity ? "true" : "false") << ",\n"
       << "  \"subscribers\": " << subscribers
       << ", \"pushes_sent\": " << sub_stats.pushes_sent
       << ", \"pushes_received\": " << pushes_received
       << ", \"windows_pushed\": " << sub_stats.windows_pushed
       << ", \"push_phase_ms\": " << push_ms
       << ", \"push_us_avg\": " << push_us_avg
       << ", \"broker_frames_sent\": " << broker_stats.frames_sent
       << ", \"broker_frames_coalesced\": " << broker_stats.frames_coalesced
       << ", \"delivery_ok\": " << (delivery_ok ? "true" : "false")
       << ", \"all_subscribed\": " << (all_subscribed ? "true" : "false")
       << "\n}\n";
  std::cout << "json: " << out_path << '\n';

  // -- Gate -------------------------------------------------------------------
  bool ok = parity && delivery_ok && all_subscribed && windows_checked > 0 &&
            records_dropped == 0;
  std::cout << "shape check: parity " << (parity ? "PASS" : "FAIL")
            << "; no late drops " << (records_dropped == 0 ? "PASS" : "FAIL")
            << "; delivery " << (delivery_ok ? "PASS" : "FAIL")
            << "; subscriptions " << (all_subscribed ? "PASS" : "FAIL");
  if (max_overhead > 0.0) {
    const bool overhead_ok = overhead <= max_overhead;
    if (!overhead_ok) {
      ok = false;
    }
    std::cout << "; overhead <= " << max_overhead << ": "
              << (overhead_ok ? "PASS" : "FAIL");
  }
  std::cout << '\n';
  return ok ? 0 : 1;
}
