// Observability overhead benchmark — the cost of leaving the unified
// metrics layer on in Release, measured on the fleet-scale workload.
//
// Method: the same `metro_fleet` scenario runs 2 x --reps times with
// metrics enabled and disabled *interleaved* (on, off, on, off, ...), so
// host-level drift (thermal, cache, page-cache warmup) hits both arms
// equally.  Each pair yields one overhead ratio wall_on / wall_off - 1;
// the reported figure is the median pair ratio, which a single noisy rep
// cannot move.  Disabled here means obs::set_enabled(false) — the
// always-on branch-test cost stays in, which is exactly the cost a
// shipping build pays to keep the kill switch.  A build with
// -DEMON_OBS_OFF=ON compiles recording out entirely; run this bench on
// both builds to separate branch cost from recording cost.
//
// Hard gates (exit 1):
//   * Trace::digest() must be bit-identical across every run, metrics on
//     or off — instrumentation must never perturb the simulation.
//   * With --max-overhead X (> 0): median pair overhead must be <= X.
//
// The JSON artifact (--out, default BENCH_obs.json) embeds a full
// obs::write_json registry snapshot from the final metrics-on run, so CI
// archives the actual hot-path histograms alongside the overhead figure.
//
// Flags: --devices N      (default 10000)
//        --networks N     (default 32)
//        --duration-s S   (simulated seconds per run, default 10)
//        --reps N         (pairs, default 3)
//        --seed N         (default 1)
//        --out FILE       (default BENCH_obs.json)
//        --max-overhead X (gate, 0 = report only; CI passes 0.03)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

struct RunResult {
  double wall_s = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace emon;
  util::LogConfig::set_level(util::LogLevel::kError);

  std::size_t devices = 10'000;
  std::size_t networks = 32;
  double duration_s = 10.0;
  std::size_t reps = 3;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_obs.json";
  double max_overhead = 0.0;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--devices") {
      devices = std::stoul(value);
    } else if (flag == "--networks") {
      networks = std::stoul(value);
    } else if (flag == "--duration-s") {
      duration_s = std::stod(value);
    } else if (flag == "--reps") {
      reps = std::stoul(value);
    } else if (flag == "--seed") {
      seed = std::stoull(value);
    } else if (flag == "--out") {
      out_path = value;
    } else if (flag == "--max-overhead") {
      max_overhead = std::stod(value);
    } else {
      std::cerr << "unknown flag " << flag << '\n';
      return 2;
    }
  }

  const auto run_once = [&](bool metrics_on,
                            std::string* snapshot_json) -> RunResult {
    obs::set_enabled(metrics_on);
    core::Testbed bed{core::metro_fleet(networks, devices, seed)};
    const auto t0 = Clock::now();
    bed.start();
    bed.run_for(sim::seconds_f(duration_s));
    RunResult r;
    r.wall_s = seconds_since(t0);
    r.events = bed.executed_events();
    r.digest = bed.trace().digest();
    if (snapshot_json != nullptr) {
      std::ostringstream out;
      obs::write_json(bed.aggregator(0).metrics().snapshot(), out);
      *snapshot_json = out.str();
    }
    obs::set_enabled(true);
    return r;
  };

  std::cout << "=== obs overhead: metro_fleet " << devices << " devices / "
            << networks << " networks, " << duration_s
            << " simulated seconds x " << reps << " interleaved pairs ===\n\n";

  std::vector<RunResult> on_runs;
  std::vector<RunResult> off_runs;
  std::vector<double> pair_overheads;
  std::string snapshot_json = "{}";
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const bool last = rep + 1 == reps;
    on_runs.push_back(run_once(true, last ? &snapshot_json : nullptr));
    off_runs.push_back(run_once(false, nullptr));
    pair_overheads.push_back(on_runs.back().wall_s / off_runs.back().wall_s -
                             1.0);
  }

  // -- Gates ------------------------------------------------------------------
  bool digest_parity = true;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    digest_parity = digest_parity &&
                    on_runs[rep].digest == off_runs[rep].digest &&
                    on_runs[rep].digest == on_runs[0].digest;
  }
  const double overhead = median(pair_overheads);

  // -- Report -----------------------------------------------------------------
  util::Table table({"rep", "on [s]", "off [s]", "pair overhead"});
  for (std::size_t rep = 0; rep < reps; ++rep) {
    table.row(rep, util::Table::num(on_runs[rep].wall_s, 3),
              util::Table::num(off_runs[rep].wall_s, 3),
              util::Table::num(pair_overheads[rep] * 100.0, 2) + " %");
  }
  std::cout << table.render() << '\n'
            << "median overhead: " << util::Table::num(overhead * 100.0, 2)
            << " %\n";

  // -- JSON artifact ----------------------------------------------------------
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"devices\": " << devices << ", \"networks\": " << networks
       << ", \"duration_s\": " << duration_s << ", \"reps\": " << reps
       << ", \"seed\": " << seed << ",\n  \"pair_overheads\": [";
  for (std::size_t rep = 0; rep < reps; ++rep) {
    json << (rep == 0 ? "" : ", ") << pair_overheads[rep];
  }
  json << "],\n"
       << "  \"median_overhead\": " << overhead
       << ", \"max_overhead_gate\": " << max_overhead
       << ", \"digest_parity\": " << (digest_parity ? "true" : "false")
       << ", \"digest\": " << on_runs[0].digest
       << ", \"events_per_run\": " << on_runs[0].events << ",\n"
       << "  \"metrics_snapshot\": " << snapshot_json << "\n}\n";
  std::cout << "json: " << out_path << '\n';

  // -- Verdict ----------------------------------------------------------------
  bool ok = digest_parity;
  std::cout << "shape check: digest parity "
            << (digest_parity ? "PASS" : "FAIL");
  if (max_overhead > 0.0) {
    const bool overhead_ok = overhead <= max_overhead;
    if (!overhead_ok) {
      ok = false;
    }
    std::cout << "; overhead <= " << max_overhead << ": "
              << (overhead_ok ? "PASS" : "FAIL");
  }
  std::cout << '\n';
  return ok ? 0 : 1;
}
