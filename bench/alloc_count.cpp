// Allocation-count bench — the EMON_HOT runtime witness as a CI artifact.
//
// Replays the serve workload's ingest path (Tsdb::ingest + the
// RollupEngine hook — the EMON_HOT functions tools/emon_lint.py polices)
// through util/alloc_probe.hpp's counting operator new, in three phases:
//
//   cold     the first record of every device: series creation, chunk and
//            dedup-ring setup, rollup series/net-pane layout.  Allocations
//            here are by design (init_series and friends are the cold
//            branches the lint lets the hot bodies call into).
//   warmup   records 2..warmup: capacity doublings amortizing out.
//   steady   `measure` further records per device: the window the EMON_HOT
//            contract covers.  HARD GATE: zero operator-new calls, same
//            bar as tests/test_hot_alloc.cpp — plus the duplicate-drop
//            path re-ingesting one stale record per device, also zero.
//
// Writes BENCH_alloc.json (allocs per phase, per record, gate verdicts)
// for tools/collect_bench_trajectory.py; exits 1 if a gate fails.
//
// Flags: --devices N   (default 2000)
//        --networks N  (default 8)
//        --warmup N    records per device before measuring (default 160)
//        --measure N   measured records per device (default 64)
//        --shards N    Tsdb shards (default 4)
//        --out FILE    (default BENCH_alloc.json)

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/records.hpp"
#include "store/rollup.hpp"
#include "store/tsdb.hpp"
#include "util/alloc_probe.hpp"

EMON_DEFINE_ALLOC_COUNTING_NEW

namespace {

using emon::core::ConsumptionRecord;
using emon::util::AllocProbe;

ConsumptionRecord make_record(std::size_t device, std::uint64_t seq,
                              std::size_t networks) {
  ConsumptionRecord r;
  r.device_id = "dev-" + std::to_string(device);
  r.sequence = seq;
  r.timestamp_ns = static_cast<std::int64_t>(seq) * 1'000'000;
  r.interval_ns = 1'000'000;
  r.current_ma = 100.0 + static_cast<double>((device + seq) % 50);
  r.bus_voltage_mv = 5'000.0;
  r.energy_mwh = 0.125 + static_cast<double>(seq % 7) * 0.001;
  r.network = "net-" + std::to_string(device % networks);
  return r;
}

/// Ingests rounds [seq_first, seq_last] across all devices with the probe
/// armed; returns the operator-new count.
std::uint64_t measured_rounds(emon::store::Tsdb& tsdb, std::size_t devices,
                              std::size_t networks, std::uint64_t seq_first,
                              std::uint64_t seq_last) {
  // Records are pre-built per round so the probe sees the store, not the
  // generator.
  std::vector<ConsumptionRecord> round;
  round.reserve(devices);
  std::uint64_t total = 0;
  for (std::uint64_t seq = seq_first; seq <= seq_last; ++seq) {
    round.clear();
    for (std::size_t d = 0; d < devices; ++d) {
      round.push_back(make_record(d, seq, networks));
    }
    AllocProbe::arm();
    for (const auto& r : round) {
      (void)tsdb.ingest(r);
    }
    total += AllocProbe::disarm();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emon;

  std::size_t devices = 2000;
  std::size_t networks = 8;
  std::uint64_t warmup = 160;
  std::uint64_t measure = 64;
  std::size_t shards = 4;
  std::string out_path = "BENCH_alloc.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--devices") {
      devices = std::stoul(value);
    } else if (flag == "--networks") {
      networks = std::stoul(value);
    } else if (flag == "--warmup") {
      warmup = std::stoull(value);
    } else if (flag == "--measure") {
      measure = std::stoull(value);
    } else if (flag == "--shards") {
      shards = std::stoul(value);
    } else if (flag == "--out") {
      out_path = value;
    } else {
      std::cerr << "unknown flag: " << flag << '\n';
      return 2;
    }
  }

  store::TsdbOptions opt;
  opt.shards = shards;
  opt.seal_threshold = 1u << 20;  // no seals inside the measured window
  store::Tsdb tsdb(opt);
  store::RollupEngine rollups(tsdb);
  tsdb.set_ingest_hook(&rollups);
  store::RollupSpec spec;
  spec.window_ns = 3'600'000'000'000;  // tumbling hour: no closes mid-run
  spec.slide_ns = 3'600'000'000'000;
  (void)rollups.register_rollup(spec);

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t cold_allocs =
      measured_rounds(tsdb, devices, networks, 1, 1);
  const std::uint64_t warm_allocs =
      warmup > 1 ? measured_rounds(tsdb, devices, networks, 2, warmup) : 0;
  const std::uint64_t steady_allocs = measured_rounds(
      tsdb, devices, networks, warmup + 1, warmup + measure);

  // Duplicate-drop path: one stale (already admitted) record per device.
  std::vector<ConsumptionRecord> stale;
  stale.reserve(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    stale.push_back(make_record(d, warmup + 1, networks));
  }
  AllocProbe::arm();
  for (const auto& r : stale) {
    (void)tsdb.ingest(r);
  }
  const std::uint64_t dup_allocs = AllocProbe::disarm();
  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::uint64_t steady_records = devices * measure;
  const double cold_per_device =
      static_cast<double>(cold_allocs) / static_cast<double>(devices);
  const double steady_per_record = static_cast<double>(steady_allocs) /
                                   static_cast<double>(steady_records);
  const store::TsdbStats stats = tsdb.stats();
  const bool steady_ok = steady_allocs == 0;
  const bool dup_ok = dup_allocs == 0;
  const bool counts_ok =
      stats.records_ingested == devices * (warmup + measure) &&
      stats.duplicates_dropped == devices;

  std::cout << "alloc_count: " << devices << " devices, " << warmup
            << " warmup + " << measure << " measured records/device\n"
            << "  cold:   " << cold_allocs << " allocs ("
            << cold_per_device << " per device)\n"
            << "  warmup: " << warm_allocs << " allocs\n"
            << "  steady: " << steady_allocs << " allocs over "
            << steady_records << " records (" << steady_per_record
            << " per record)\n"
            << "  dup:    " << dup_allocs << " allocs over " << devices
            << " duplicate drops\n";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"devices\": " << devices << ", \"networks\": " << networks
       << ", \"warmup_per_device\": " << warmup
       << ", \"measure_per_device\": " << measure
       << ", \"shards\": " << shards << ",\n"
       << "  \"cold_allocs\": " << cold_allocs
       << ", \"cold_allocs_per_device\": " << cold_per_device
       << ", \"warmup_allocs\": " << warm_allocs << ",\n"
       << "  \"steady_allocs\": " << steady_allocs
       << ", \"steady_records\": " << steady_records
       << ", \"steady_allocs_per_record\": " << steady_per_record
       << ", \"dup_allocs\": " << dup_allocs << ",\n"
       << "  \"wall_secs\": " << wall_secs
       << ", \"steady_zero_alloc\": " << (steady_ok ? "true" : "false")
       << ", \"dup_zero_alloc\": " << (dup_ok ? "true" : "false")
       << ", \"counts_ok\": " << (counts_ok ? "true" : "false") << "\n}\n";
  std::cout << "json: " << out_path << '\n';

  const bool ok = steady_ok && dup_ok && counts_ok;
  std::cout << "gates: steady zero-alloc " << (steady_ok ? "PASS" : "FAIL")
            << "; dup zero-alloc " << (dup_ok ? "PASS" : "FAIL")
            << "; counters " << (counts_ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}
