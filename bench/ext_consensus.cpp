// Extension — device-level consensus (the paper's future work, §IV).
//
// Compares the trusted-aggregator chain (no consensus, paper §II-A) with
// rotating-leader quorum consensus among the devices themselves:
//   * commit latency per block,
//   * messages per committed block,
//   * behaviour under crash faults.

#include <chrono>
#include <iostream>

#include "chain/permissioned.hpp"
#include "core/consensus.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

emon::chain::RecordBytes record_bytes(int i) {
  emon::chain::RecordBytes bytes;
  const std::string payload = "record-" + std::to_string(i) + "-padding-to-64B-"
                              "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  bytes.assign(payload.begin(), payload.end());
  return bytes;
}

}  // namespace

int main() {
  emon::util::LogConfig::set_level(emon::util::LogLevel::kError);
  using namespace emon;
  using util::Table;

  std::cout << "=== Extension: consensus among devices vs trusted "
               "aggregator ===\n\n";

  // Baseline: the trusted-aggregator hash chain commits instantly (one
  // append, no messages) — that is the point of §II-A's design choice.
  {
    chain::PermissionedChain chain;
    chain.register_writer({"agg-1", "s"});
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 100; ++i) {
      chain.append("agg-1", "s", {record_bytes(i)}, i);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us_per_block =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / 100.0;
    std::cout << "baseline (trusted aggregator, no consensus): 0 network "
                 "messages, "
              << Table::num(us_per_block, 1)
              << " us CPU per block, 0 s protocol latency\n\n";
  }

  Table table({"devices", "faulty", "rounds ok", "rounds failed",
               "msgs/committed block", "commit latency mean [ms]",
               "p99 [ms]", "consistent"});

  for (std::size_t members : {std::size_t{3}, std::size_t{5}, std::size_t{9}, std::size_t{15}}) {
    for (std::size_t faulty : {std::size_t{0}, std::size_t{1}, members / 3}) {
      sim::Kernel kernel;
      core::ConsensusGroup group{kernel, members, core::ConsensusParams{},
                                 util::Rng{5}};
      for (std::size_t f = 0; f < faulty; ++f) {
        group.set_faulty(members - 1 - f, true);  // avoid leader 0 first
      }
      group.start();
      int next_record = 0;
      // Feed records at 20/s for 30 simulated seconds.
      sim::PeriodicTimer feeder{kernel, sim::milliseconds(50), [&] {
        group.submit(record_bytes(next_record++));
      }};
      feeder.start();
      kernel.run_until(sim::SimTime{sim::seconds(30).ns()});
      feeder.stop();
      group.stop();

      const auto& m = group.metrics();
      const double msgs_per_block =
          m.rounds_committed > 0
              ? static_cast<double>(m.messages_sent) /
                    static_cast<double>(m.rounds_committed)
              : 0.0;
      table.row(members, faulty, m.rounds_committed, m.rounds_failed,
                Table::num(msgs_per_block, 1),
                m.commit_latency_s.empty()
                    ? std::string("-")
                    : Table::num(m.commit_latency_s.mean() * 1e3, 2),
                m.commit_latency_s.empty()
                    ? std::string("-")
                    : Table::num(m.commit_latency_s.quantile(0.99) * 1e3, 2),
                group.replicas_consistent() ? "yes" : "NO");
    }
  }
  std::cout << table.render() << '\n';
  std::cout
      << "shape: message cost grows ~3(n-1) per block and latency adds two\n"
      << "radio hops vs zero for the trusted aggregator — quantifying the\n"
      << "paper's rationale for deferring consensus to future work.\n";
  return 0;
}
