// Concurrent serving-path benchmark — sustained fleet ingest through the
// ServePipeline while query threads hammer the same MVCC store.
//
// Two measured runs over the same 10,000-device / 32-network metro_fleet-
// shaped workload (fresh store each):
//
//   baseline    pipeline ingest alone (one rollup maintained, windows
//               fanned to a sink) — the no-readers ingest rate;
//   concurrent  the same ingest racing N query threads, each running the
//               dashboard mix (whole-history aggregate, live-only
//               current_stats over the mid 60%, 1 s downsample) in a loop
//               until the last record lands.
//
// Hard gates:
//   * parity    — during the concurrent run a handful of aggregate answers
//     capture their per-device snapshot cuts (QuerySpec::capture_cut);
//     after quiesce each is replayed into a fresh store holding exactly
//     that cut and must compare bit-identical (==, doubles included).
//     Mid-ingest answers are real answers at a consistent watermark, or
//     the bench fails.  Always enforced.
//   * ingest degradation <= --max-degradation (default 0.10) with queries
//     running — enforced only when every thread has a hardware thread of
//     its own (ingest worker + producer + query_threads * workers);
//     recorded either way.
//
// Query latency lands in the engines' obs histograms
// (query_ns{kind="..."}); the artifact reports p50/p95/p99 per kind.
//
// Flags: --devices N          (default 10000)
//        --networks N         (default 32)
//        --records N          per device (default 60)
//        --shards N           Tsdb shards (default 64)
//        --query-threads N    concurrent reader threads (default 2)
//        --workers N          pool workers per query engine (default 2)
//        --batch N            records per submitted batch (default 512)
//        --parity-checks N    cut-replay checks (default 3)
//        --max-degradation X  ingest slowdown gate (default 0.10)
//        --seed N             (default 1)
//        --out FILE           (default BENCH_serve.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/records.hpp"
#include "core/serve_pipeline.hpp"
#include "obs/metrics.hpp"
#include "store/query_engine.hpp"
#include "store/rollup.hpp"
#include "store/tsdb.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using emon::core::ConsumptionRecord;
using emon::core::DeviceId;
using emon::core::NetworkId;

double sec_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Workload {
  std::vector<ConsumptionRecord> arrival_order;
  std::vector<DeviceId> devices;
  std::int64_t t_min_ns = 0;
  std::int64_t t_max_ns = 0;
};

/// metro_fleet record shape, round-robin interleaved (same generator family
/// as bench/query_scale.cpp): every 8th device roams for its middle sixth
/// and that slice arrives last, 1-in-5 records offline-buffered.
Workload make_workload(std::size_t devices, std::size_t networks,
                       std::size_t per_device, std::uint64_t seed) {
  Workload w;
  std::vector<std::vector<ConsumptionRecord>> streams(devices);
  emon::util::Rng rng{seed};
  for (std::size_t d = 0; d < devices; ++d) {
    const DeviceId id = "dev-" + std::to_string(d + 1);
    const NetworkId home = "wan-" + std::to_string(d % networks);
    const NetworkId visited = "wan-" + std::to_string((d + 1) % networks);
    const bool roams = d % 8 == 0;
    w.devices.push_back(id);
    std::vector<ConsumptionRecord> live;
    std::vector<ConsumptionRecord> roamed;
    std::int64_t t = static_cast<std::int64_t>(d) * 9'000'000;
    for (std::size_t i = 0; i < per_device; ++i) {
      t += 100'000'000 + static_cast<std::int64_t>(rng.uniform(-50e3, 50e3));
      ConsumptionRecord r;
      r.device_id = id;
      r.sequence = i + 1;
      r.timestamp_ns = t;
      r.interval_ns = 100'000'000;
      r.current_ma = 150.0 + 40.0 * static_cast<double>(d % 7) +
                     rng.uniform(-5.0, 5.0);
      r.bus_voltage_mv = 5000.0 + rng.uniform(-10.0, 10.0);
      r.energy_mwh = r.current_ma * 5.0 * (0.1 / 3600.0);
      const bool away = roams && i >= per_device / 3 && i < per_device / 2;
      r.network = away ? visited : home;
      r.stored_offline = i % 5 == 0;
      (away ? roamed : live).push_back(std::move(r));
    }
    live.insert(live.end(), std::make_move_iterator(roamed.begin()),
                std::make_move_iterator(roamed.end()));
    streams[d] = std::move(live);
  }
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (auto& stream : streams) {
      if (i < stream.size()) {
        w.arrival_order.push_back(std::move(stream[i]));
        any = true;
      }
    }
    if (!any) {
      break;
    }
  }
  w.t_min_ns = INT64_MAX;
  w.t_max_ns = INT64_MIN;
  for (const auto& r : w.arrival_order) {
    w.t_min_ns = std::min(w.t_min_ns, r.timestamp_ns);
    w.t_max_ns = std::max(w.t_max_ns, r.timestamp_ns);
  }
  return w;
}

bool aggregates_equal(const emon::store::DeviceAggregate& a,
                      const emon::store::DeviceAggregate& b) {
  return a.count == b.count && a.t_min_ns == b.t_min_ns &&
         a.t_max_ns == b.t_max_ns && a.min_current_ma == b.min_current_ma &&
         a.max_current_ma == b.max_current_ma &&
         a.avg_current_ma == b.avg_current_ma &&
         a.sum_energy_mwh == b.sum_energy_mwh;
}

bool fleet_equal(const emon::store::FleetAggregate& a,
                 const emon::store::FleetAggregate& b) {
  if (a.per_device.size() != b.per_device.size() ||
      !aggregates_equal(a.merged, b.merged)) {
    return false;
  }
  for (std::size_t i = 0; i < a.per_device.size(); ++i) {
    if (a.per_device[i].first != b.per_device[i].first ||
        !aggregates_equal(a.per_device[i].second, b.per_device[i].second)) {
      return false;
    }
  }
  return true;
}

/// One live answer pinned for post-quiesce replay: the spec it ran, the cut
/// it was answered at, and the answer itself.
struct ParitySample {
  emon::store::QuerySpec spec;
  emon::store::FleetCut cut;
  emon::store::FleetAggregate answer;
};

/// Drives one full workload through a ServePipeline (rollup maintained,
/// windows counted) and returns the wall seconds from first submit to
/// quiesce.  `windows_pushed` and `records_accepted` come from the
/// pipeline's own stats.
double run_ingest(emon::store::Tsdb& db, const Workload& workload,
                  std::size_t batch, emon::core::ServePipelineStats* out) {
  emon::store::RollupEngine rollups{db};
  db.set_ingest_hook(&rollups);
  emon::store::RollupSpec rspec;
  rspec.window_ns = 1'000'000'000;
  rspec.slide_ns = 1'000'000'000;
  rspec.lateness_ns = 500'000'000;
  const std::uint64_t rollup_id = rollups.register_rollup(rspec);

  emon::core::ServePipeline pipeline{db, &rollups};
  std::uint64_t sink_windows = 0;
  pipeline.add_window_sink(rollup_id,
                           [&sink_windows](const emon::store::ClosedWindow&) {
                             ++sink_windows;
                           });
  pipeline.start();
  const auto t0 = Clock::now();
  std::vector<ConsumptionRecord> chunk;
  chunk.reserve(batch);
  for (const auto& r : workload.arrival_order) {
    chunk.push_back(r);
    if (chunk.size() >= batch) {
      pipeline.submit_records(std::move(chunk));
      chunk = {};
      chunk.reserve(batch);
    }
  }
  if (!chunk.empty()) {
    pipeline.submit_records(std::move(chunk));
  }
  pipeline.flush();
  const double secs = sec_since(t0);
  if (out != nullptr) {
    *out = pipeline.stats();
  }
  pipeline.stop();
  db.set_ingest_hook(nullptr);
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emon;
  util::LogConfig::set_level(util::LogLevel::kError);

  std::size_t devices = 10'000;
  std::size_t networks = 32;
  std::size_t per_device = 60;
  std::size_t shards = 64;
  std::size_t query_threads = 2;
  std::size_t workers = 2;
  std::size_t batch = 512;
  std::size_t parity_checks = 3;
  double max_degradation = 0.10;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--devices") {
      devices = std::stoul(value);
    } else if (flag == "--networks") {
      networks = std::stoul(value);
    } else if (flag == "--records") {
      per_device = std::stoul(value);
    } else if (flag == "--shards") {
      shards = std::stoul(value);
    } else if (flag == "--query-threads") {
      query_threads = std::stoul(value);
    } else if (flag == "--workers") {
      workers = std::stoul(value);
    } else if (flag == "--batch") {
      batch = std::stoul(value);
    } else if (flag == "--parity-checks") {
      parity_checks = std::stoul(value);
    } else if (flag == "--max-degradation") {
      max_degradation = std::stod(value);
    } else if (flag == "--seed") {
      seed = std::stoull(value);
    } else if (flag == "--out") {
      out_path = value;
    } else {
      std::cerr << "unknown flag " << flag << '\n';
      return 2;
    }
  }
  query_threads = std::max<std::size_t>(1, query_threads);
  batch = std::max<std::size_t>(1, batch);

  const Workload workload =
      make_workload(devices, networks, per_device, seed);
  const std::size_t total_records = workload.arrival_order.size();
  // Per-device acceptance order (sequences are unique, so every record is
  // accepted): the replay source for parity checks.
  std::map<DeviceId, std::vector<const ConsumptionRecord*>> accepted;
  for (const auto& r : workload.arrival_order) {
    accepted[r.device_id].push_back(&r);
  }

  std::cout << "=== Concurrent serving: " << devices << " devices / "
            << networks << " networks, " << total_records << " records, "
            << query_threads << " query threads x " << workers
            << " workers ===\n\n";

  // -- Baseline: ingest alone -------------------------------------------------
  const store::TsdbOptions opts{shards, 32};
  double base_secs = 0.0;
  {
    store::Tsdb db{opts};
    base_secs = run_ingest(db, workload, batch, nullptr);
  }
  const double base_rate = static_cast<double>(total_records) / base_secs;

  // -- Concurrent: ingest racing the query mix --------------------------------
  store::Tsdb db{opts};
  obs::MetricsRegistry metrics;
  std::atomic<bool> ingest_done{false};
  std::atomic<std::uint64_t> queries_answered{0};
  std::vector<ParitySample> samples(parity_checks);
  std::atomic<std::size_t> samples_taken{0};

  const std::int64_t span = workload.t_max_ns - workload.t_min_ns;
  std::vector<std::thread> readers;
  for (std::size_t q = 0; q < query_threads; ++q) {
    readers.emplace_back([&, q] {
      store::QueryEngineOptions eopts;
      eopts.workers = workers;
      eopts.metrics = &metrics;
      const store::QueryEngine engine{db, eopts};
      store::QuerySpec whole;  // dashboard roll-up
      store::QuerySpec live_mid;  // verification read
      live_mid.t0_ns = workload.t_min_ns + span / 5;
      live_mid.t1_ns = workload.t_max_ns - span / 5;
      live_mid.filter.stored_offline = false;
      store::QuerySpec windows;  // 1 s fleet downsample
      windows.window_ns = 1'000'000'000;
      std::uint64_t answered = 0;
      bool final_pass = false;
      while (!final_pass) {
        final_pass = ingest_done.load(std::memory_order_acquire);
        // A few aggregates pin their cut for the post-quiesce replay gate;
        // thread 0 takes them spread across its run.
        const std::size_t slot = samples_taken.load(std::memory_order_relaxed);
        if (q == 0 && slot < parity_checks && answered % 5 == 2) {
          ParitySample& s = samples[slot];
          s.spec = whole;
          s.spec.capture_cut = &s.cut;
          s.answer = engine.aggregate(s.spec);
          s.spec.capture_cut = nullptr;
          samples_taken.store(slot + 1, std::memory_order_relaxed);
        } else {
          (void)engine.aggregate(whole);
        }
        (void)engine.current_stats(live_mid);
        (void)engine.downsample(windows);
        answered += 3;
      }
      queries_answered.fetch_add(answered, std::memory_order_relaxed);
    });
  }

  core::ServePipelineStats conc_stats;
  const auto conc_t0 = Clock::now();
  const double conc_secs = run_ingest(db, workload, batch, &conc_stats);
  ingest_done.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  const double conc_rate = static_cast<double>(total_records) / conc_secs;
  const double wall_secs = sec_since(conc_t0);
  const double degradation = 1.0 - conc_rate / base_rate;

  // -- Gate (a): cut-replay parity, always enforced --------------------------
  bool parity = conc_stats.records_accepted == total_records;
  if (!parity) {
    std::cerr << "PARITY FAIL: pipeline accepted "
              << conc_stats.records_accepted << " of " << total_records
              << " records\n";
  }
  const std::size_t taken = samples_taken.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < taken; ++i) {
    const ParitySample& s = samples[i];
    auto replay = std::make_unique<store::Tsdb>(opts);
    for (const auto& [id, n] : s.cut.per_device) {
      const auto it = accepted.find(id);
      if (it == accepted.end()) {
        parity = false;
        continue;
      }
      const std::uint64_t take =
          std::min<std::uint64_t>(n, it->second.size());
      for (std::uint64_t k = 0; k < take; ++k) {
        replay->ingest(*it->second[k]);
      }
      if (take < n) {
        parity = false;
      }
    }
    const store::QueryEngine oracle{*replay, store::QueryEngineOptions{1}};
    if (!fleet_equal(s.answer, oracle.aggregate(s.spec))) {
      parity = false;
      std::cerr << "PARITY FAIL: live answer " << i
                << " != quiesced replay at its cut\n";
    }
  }
  // The final answer at the full cut must equal a clean store of the whole
  // workload — the quiesced differential, independent of the sampled cuts.
  {
    store::Tsdb clean{opts};
    for (const auto& r : workload.arrival_order) {
      clean.ingest(r);
    }
    const store::QueryEngine raced{db, store::QueryEngineOptions{workers}};
    const store::QueryEngine quiet{clean, store::QueryEngineOptions{1}};
    const store::QuerySpec whole;
    if (!fleet_equal(raced.aggregate(whole), quiet.aggregate(whole))) {
      parity = false;
      std::cerr << "PARITY FAIL: quiesced raced store != clean store\n";
    }
  }

  // -- Gate (b): ingest degradation, hardware-conditional --------------------
  const unsigned hw_threads = std::thread::hardware_concurrency();
  // The slowdown only measures the MVCC design (and not scheduler thrash)
  // when every thread actually has a core: ingest worker + producer + each
  // query thread with its pool workers.  Anything less records the number
  // but skips the gate — same policy as the other benches on oversubscribed
  // hosted runners.
  const bool enforceable =
      hw_threads >= static_cast<unsigned>(query_threads * workers + 2);
  const bool degradation_ok = degradation <= max_degradation;

  // -- Report -----------------------------------------------------------------
  const auto q_summary = [&metrics](const char* kind) {
    return metrics
        .histogram(std::string("query_ns{kind=\"") + kind + "\"}")
        .summary();
  };
  const obs::HistogramSummary agg_h = q_summary("aggregate");
  const obs::HistogramSummary stats_h = q_summary("current_stats");
  const obs::HistogramSummary down_h = q_summary("downsample");

  util::Table table({"run", "records/s", "secs", "queries"});
  table.row("ingest alone", util::Table::num(base_rate, 0),
            util::Table::num(base_secs, 2), "-");
  table.row("ingest + queries", util::Table::num(conc_rate, 0),
            util::Table::num(conc_secs, 2),
            std::to_string(queries_answered.load()));
  std::cout << table.render() << '\n';

  util::Table lat({"query", "count", "p50 [us]", "p95 [us]", "p99 [us]"});
  const auto us = [](std::uint64_t ns) {
    return util::Table::num(static_cast<double>(ns) / 1000.0, 1);
  };
  lat.row("aggregate", agg_h.count, us(agg_h.p50), us(agg_h.p95),
          us(agg_h.p99));
  lat.row("current_stats", stats_h.count, us(stats_h.p50), us(stats_h.p95),
          us(stats_h.p99));
  lat.row("downsample", down_h.count, us(down_h.p50), us(down_h.p95),
          us(down_h.p99));
  std::cout << lat.render() << '\n';

  // -- JSON artifact ----------------------------------------------------------
  const auto hist_json = [](const obs::HistogramSummary& h) {
    std::string s = "{\"count\": " + std::to_string(h.count) +
                    ", \"p50_ns\": " + std::to_string(h.p50) +
                    ", \"p95_ns\": " + std::to_string(h.p95) +
                    ", \"p99_ns\": " + std::to_string(h.p99) +
                    ", \"max_ns\": " + std::to_string(h.max) + "}";
    return s;
  };
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"devices\": " << devices << ", \"networks\": " << networks
       << ", \"records_per_device\": " << per_device
       << ", \"records_total\": " << total_records
       << ", \"shards\": " << shards
       << ", \"query_threads\": " << query_threads
       << ", \"workers\": " << workers
       << ", \"hardware_threads\": " << hw_threads << ",\n"
       << "  \"baseline_ingest_per_s\": " << base_rate
       << ", \"concurrent_ingest_per_s\": " << conc_rate
       << ", \"ingest_degradation\": " << degradation
       << ", \"max_degradation\": " << max_degradation
       << ", \"degradation_enforceable\": "
       << (enforceable ? "true" : "false") << ",\n"
       << "  \"wall_secs\": " << wall_secs
       << ", \"queries_answered\": " << queries_answered.load()
       << ", \"windows_pushed\": " << conc_stats.windows_pushed
       << ", \"parity_checks\": " << taken << ",\n"
       << "  \"query_latency\": {\n"
       << "    \"aggregate\": " << hist_json(agg_h) << ",\n"
       << "    \"current_stats\": " << hist_json(stats_h) << ",\n"
       << "    \"downsample\": " << hist_json(down_h) << "\n"
       << "  },\n"
       << "  \"parity\": " << (parity ? "true" : "false")
       << ", \"degradation_ok\": " << (degradation_ok ? "true" : "false")
       << "\n}\n";
  std::cout << "json: " << out_path << '\n';

  // -- Gates ------------------------------------------------------------------
  bool ok = parity;
  std::cout << "gates: parity " << (parity ? "PASS" : "FAIL")
            << "; ingest degradation " << util::Table::num(degradation * 100, 1)
            << "% <= " << util::Table::num(max_degradation * 100, 0) << "%: ";
  if (enforceable) {
    if (!degradation_ok) {
      ok = false;
    }
    std::cout << (degradation_ok ? "PASS" : "FAIL");
  } else {
    std::cout << "SKIP (" << hw_threads << " hardware threads)";
  }
  std::cout << '\n';
  return ok ? 0 : 1;
}
