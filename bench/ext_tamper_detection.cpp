// Extension — the "ground truth problem" (paper §IV future work):
// identifying an anomalous device that reports data different from its
// actual consumption.
//
// One device under-reports its consumption by a factor; the aggregator's
// ground-truth verification flags windows and the EWMA-profile scorer names
// a suspect.  Sweeps the tamper factor and reports detection latency and
// culprit-identification accuracy.

#include <iostream>

#include "core/scenario.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  emon::util::LogConfig::set_level(emon::util::LogLevel::kError);
  using namespace emon;
  using util::Table;

  std::cout << "=== Extension: tamper detection & culprit identification ===\n"
            << "1 network, 3 devices; dev-1 under-reports from t=40 s\n\n";

  Table table({"reported/true", "windows flagged", "detection latency [s]",
               "suspect = dev-1", "suspect accuracy [%]"});

  for (double factor : {0.9, 0.8, 0.7, 0.5, 0.3, 0.1}) {
    core::Testbed bed{core::FleetBuilder{}
                          .name("ext_tamper")
                          .networks(1, 3)
                          .seed(404)
                          .spec()};
    bed.start();
    bed.run_for(sim::seconds(40));  // honest profile building
    const std::size_t windows_before =
        bed.aggregator(0).verification_history().size();
    bed.device(0).set_tamper_factor(factor);
    bed.run_for(sim::seconds(30));

    const auto& history = bed.aggregator(0).verification_history();
    std::size_t flagged = 0;
    std::size_t suspect_right = 0;
    double detection_latency = -1.0;
    for (std::size_t i = windows_before; i < history.size(); ++i) {
      if (history[i].anomalous) {
        ++flagged;
        if (detection_latency < 0.0) {
          detection_latency = history[i].window_end.to_seconds() - 40.0;
        }
        if (history[i].suspect == "dev-1") {
          ++suspect_right;
        }
      }
    }
    const double accuracy =
        flagged > 0 ? 100.0 * static_cast<double>(suspect_right) /
                          static_cast<double>(flagged)
                    : 0.0;
    table.row(Table::num(factor, 1), flagged,
              detection_latency < 0.0 ? std::string("not detected")
                                      : Table::num(detection_latency, 1),
              suspect_right, Table::num(accuracy, 0));
  }
  std::cout << table.render() << '\n';
  std::cout
      << "shape: gross tampering (<=0.7x) is detected within one or two\n"
      << "verification windows with a correctly named suspect; mild\n"
      << "tampering (0.9x) hides inside the infrastructure tolerance band —\n"
      << "exactly the sensitivity limit the paper's future work targets.\n";
  return 0;
}
